// Wire protocol v2: a compact binary framing negotiated at connection
// setup, with v1 (length-prefixed JSON) kept as the fallback for old
// peers.
//
// Handshake. A v2-capable dialer opens with 4 bytes of magic —
// 0xF2 'P' 'B' <proposed-version> — and blocks for the 4-byte reply
// 0xF2 'P' 'B' <chosen-version>. The first magic byte 0xF2 cannot
// begin a legal v1 frame (v1 length prefixes are big-endian uint32s
// capped at 16 MB, so their first byte is always 0x00 or 0x01), which
// lets an acceptor classify a connection by sniffing a single byte:
// magic → negotiate, anything else → the byte is the start of a v1
// frame and is handed back to the first Recv. Old acceptors read the
// magic as an oversized length prefix, error out, and drop the
// connection; a ModeAuto dialer treats that as "old peer" and
// re-dials plain v1.
//
// Frame. v2 frames are `uvarint(len(body)) || body` with
//
//	body = tag || kind || payload
//	tag  = id byte 1..N from the registry table, or
//	       0x00 || uvarint(len) || literal tag bytes (unregistered types)
//	kind = 0 (no payload) | 1 (JSON bytes) | 2 (binary)
//
// Binary payloads — used for the hot structs on the mom link:
// Heartbeat, JobDone, DynGet/Resp, Register — carry a codec id byte
// followed by varint/zigzag fields; strings and slices are
// length-prefixed. Every other payload rides as the same compact JSON
// bytes v1 would produce, so nothing is unrepresentable in v2 and the
// two codecs decode to identical structs (the differential fuzz
// target pins this).
package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"time"
	"unicode/utf8"
)

// Wire versions.
const (
	V1 = 1 // length-prefixed JSON (the seed codec)
	V2 = 2 // negotiated binary framing
)

// handshakeMagic opens and acknowledges a version negotiation.
var handshakeMagic = [3]byte{0xF2, 'P', 'B'}

// Mode selects how a connection negotiates its wire version.
type Mode int

const (
	// ModeAuto proposes v2 and falls back to v1 against old peers; it
	// is the zero value so un-configured daemons interoperate with
	// everything.
	ModeAuto Mode = iota
	// ModeV1 pins the seed JSON codec: no handshake bytes on the wire.
	ModeV1
	// ModeV2 requires the binary codec; dialing an old peer fails
	// instead of falling back.
	ModeV2
)

// String implements flag.Value-style printing ("auto", "v1", "v2").
func (m Mode) String() string {
	switch m {
	case ModeV1:
		return "v1"
	case ModeV2:
		return "v2"
	default:
		return "auto"
	}
}

// ParseMode parses a -proto flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "v1", "1":
		return ModeV1, nil
	case "v2", "2":
		return ModeV2, nil
	}
	return ModeAuto, fmt.Errorf("proto: unknown mode %q (want v1, v2, or auto)", s)
}

// DialMode connects to addr and negotiates the wire codec per m.
func DialMode(addr string, m Mode) (*Conn, error) {
	return DialModeTimeout(addr, m, 0)
}

// DialModeTimeout is DialMode with the dial and the handshake exchange
// each bounded by d (0 = unbounded). In ModeAuto a failed handshake —
// an old v1-only peer reads the magic as a bogus frame length, errors
// out, and drops the connection — is retried as a plain v1 dial.
func DialModeTimeout(addr string, m Mode, d time.Duration) (*Conn, error) {
	dial := func() (*Conn, error) {
		if d <= 0 {
			return Dial(addr)
		}
		nc, err := net.DialTimeout("tcp", addr, d)
		if err != nil {
			return nil, err
		}
		return NewConn(nc), nil
	}
	c, err := dial()
	if err != nil {
		return nil, err
	}
	if m == ModeV1 {
		return c, nil
	}
	if d > 0 {
		c.SetReadTimeout(d)
		c.SetWriteTimeout(d)
	}
	if err := c.ClientHandshake(m); err != nil {
		_ = c.Close()
		if m == ModeAuto {
			return dial() // old peer: fall back to plain v1
		}
		return nil, err
	}
	c.SetReadTimeout(0)
	c.SetWriteTimeout(0)
	return c, nil
}

// ClientHandshake proposes v2 on a freshly dialed connection and
// records the version the peer chooses. It must run before any Send
// or Recv; ModeV1 is a no-op. Callers wanting a bound on the exchange
// should arm SetRead/WriteTimeout first (DialModeTimeout does).
func (c *Conn) ClientHandshake(m Mode) error {
	if m == ModeV1 {
		return nil
	}
	hello := [4]byte{handshakeMagic[0], handshakeMagic[1], handshakeMagic[2], V2}
	if _, err := c.c.Write(hello[:]); err != nil {
		return fmt.Errorf("proto: handshake write: %w", err)
	}
	var reply [4]byte
	if _, err := io.ReadFull(c.c, reply[:]); err != nil {
		return fmt.Errorf("proto: handshake read: %w", err)
	}
	if reply[0] != handshakeMagic[0] || reply[1] != handshakeMagic[1] || reply[2] != handshakeMagic[2] {
		return fmt.Errorf("proto: bad handshake reply magic %x", reply[:3])
	}
	switch v := reply[3]; v {
	case V1, V2:
		c.ver.Store(uint32(v))
	default:
		return fmt.Errorf("proto: peer chose unsupported version %d", v)
	}
	return nil
}

// AcceptHandshake classifies an inbound connection by sniffing its
// first byte: the v2 magic starts a negotiation (the acceptor replies
// with the chosen version), anything else marks a v1 peer and the
// byte is handed back to the first Recv. It must run before any Recv.
//
// m == ModeV1 pins the reply to v1 even for v2-proposing peers. A
// ModeV2 acceptor still serves sniffed v1 peers: the paper's
// qsub/qstat clients never handshake, and refusing them would break
// every old client for no protocol benefit.
func (c *Conn) AcceptHandshake(m Mode) error {
	if _, err := io.ReadFull(c.c, c.scratch[:1]); err != nil {
		return fmt.Errorf("proto: handshake read: %w", err)
	}
	if c.scratch[0] != handshakeMagic[0] {
		c.peek = int32(c.scratch[0])
		return nil
	}
	if _, err := io.ReadFull(c.c, c.scratch[1:4]); err != nil {
		return fmt.Errorf("proto: handshake read: %w", err)
	}
	if c.scratch[1] != handshakeMagic[1] || c.scratch[2] != handshakeMagic[2] {
		return fmt.Errorf("proto: bad handshake magic %x", c.scratch[:3])
	}
	proposed := c.scratch[3]
	if proposed < V1 {
		return fmt.Errorf("proto: peer proposed version %d", proposed)
	}
	chosen := byte(V1)
	if proposed >= V2 && m != ModeV1 {
		chosen = V2
	}
	reply := [4]byte{handshakeMagic[0], handshakeMagic[1], handshakeMagic[2], chosen}
	if _, err := c.c.Write(reply[:]); err != nil {
		return fmt.Errorf("proto: handshake write: %w", err)
	}
	c.ver.Store(uint32(chosen))
	return nil
}

// --- v2 framing ---

// Payload kinds inside a v2 frame.
const (
	payloadNone byte = 0
	payloadJSON byte = 1
	payloadBin  byte = 2
)

// tagID maps each registered MsgType to its stable one-byte v2 id.
// Ids are append-only wire constants: never renumber or reuse them.
// (A map plus reverse array — not a switch — so the table stays out of
// schedlint's dispatch-switch registry.)
var tagID = map[MsgType]byte{
	TQSub: 1, TQStat: 2, TQDel: 3,
	TQSubResp: 4, TQStatResp: 5,
	TRegister: 6, TJobDone: 7, TDynGet: 8, TDynFree: 9, THeartbeat: 10,
	TRunJob: 11, TKillJob: 12, TDynGetResp: 13,
	TJoin: 14, TDynJoin: 15, TDynDisjoin: 16,
	TTMDynGet: 17, TTMDynFree: 18, TTMDone: 19, TTMResp: 20,
	TSchedPull: 21, TSchedState: 22, TSchedCommit: 23,
	TOK: 24, TError: 25,
}

// tagType is the id → type reverse table.
var tagType = func() [26]MsgType {
	var t [26]MsgType
	for m, id := range tagID {
		t[id] = m
	}
	return t
}()

// v2LenPlaceholder reserves room for the frame-length uvarint at the
// head of the pooled send buffer (maxFrame needs at most 4 bytes; 5
// covers any uint32).
var v2LenPlaceholder [binary.MaxVarintLen32]byte

// sendV2 writes one v2 frame: the body is built in the pooled buffer
// after a length placeholder, then the uvarint length is patched in
// just before the body and the frame goes out in one Write.
func (c *Conn) sendV2(t MsgType, payload any) error {
	sb := sendPool.Get().(*sendBuf)
	defer func() {
		if sb.buf.Cap() <= pooledBufLimit {
			sendPool.Put(sb)
		}
	}()
	sb.buf.Reset()
	sb.buf.Write(v2LenPlaceholder[:])
	if id := tagID[t]; id != 0 {
		sb.buf.WriteByte(id)
	} else {
		sb.buf.WriteByte(0)
		s := coerceUTF8(string(t))
		putUvarint(&sb.buf, uint64(len(s)))
		sb.buf.WriteString(s)
	}
	if !appendBinary(&sb.buf, payload) {
		if payload == nil {
			sb.buf.WriteByte(payloadNone)
		} else {
			sb.buf.WriteByte(payloadJSON)
			if err := sb.enc.Encode(payload); err != nil {
				return fmt.Errorf("proto: marshal %s: %w", t, err)
			}
			sb.buf.Truncate(sb.buf.Len() - 1) // Encode appends '\n'
		}
	}
	frame := sb.buf.Bytes()
	body := len(frame) - len(v2LenPlaceholder)
	if body > maxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit", body)
	}
	var hdr [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(body))
	start := len(v2LenPlaceholder) - n
	copy(frame[start:], hdr[:n])
	c.wm.Lock()
	defer c.wm.Unlock()
	if err := armDeadline(c.c.SetWriteDeadline, &c.writeT, &c.writeArmed); err != nil {
		return err
	}
	_, err := c.c.Write(frame[start:])
	return err
}

// recvV2 reads one v2 frame. Caller holds rm with the read deadline
// already armed.
func (c *Conn) recvV2() (*Envelope, error) {
	n, err := c.readFrameLen()
	if err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	bp := recvPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	defer func() {
		if cap(buf) <= pooledBufLimit {
			*bp = buf[:0]
		}
		recvPool.Put(bp)
	}()
	if _, err := io.ReadFull(c.c, buf); err != nil {
		return nil, err
	}
	return parseV2(buf)
}

// readFrameLen reads the frame-length uvarint byte by byte (through
// the conn scratch so nothing escapes per call).
func (c *Conn) readFrameLen() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen32; i++ {
		if _, err := io.ReadFull(c.c, c.scratch[:1]); err != nil {
			if i > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		b := c.scratch[0]
		if b < 0x80 {
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("proto: malformed v2 frame length")
}

// parseV2 decodes a frame body into an envelope. The payload bytes
// are copied out so the pooled buffer can be recycled.
func parseV2(buf []byte) (*Envelope, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("proto: short v2 frame (%d bytes)", len(buf))
	}
	tag, rest := buf[0], buf[1:]
	env := &Envelope{}
	if tag == 0 {
		l, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < l {
			return nil, fmt.Errorf("proto: bad v2 literal tag")
		}
		env.Type = MsgType(rest[n : n+int(l)])
		rest = rest[n+int(l):]
	} else if int(tag) < len(tagType) && tagType[tag] != "" {
		env.Type = tagType[tag]
	} else {
		return nil, fmt.Errorf("proto: unknown v2 tag id %d", tag)
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("proto: v2 frame missing payload kind")
	}
	kind, pl := rest[0], rest[1:]
	switch kind {
	case payloadNone:
		if len(pl) != 0 {
			return nil, fmt.Errorf("proto: %d trailing bytes after empty payload", len(pl))
		}
	case payloadJSON:
		if len(pl) == 0 {
			return nil, fmt.Errorf("proto: empty v2 JSON payload")
		}
		env.Payload = append(json.RawMessage(nil), pl...)
	case payloadBin:
		if len(pl) < 2 { // codec id + at least one field byte
			return nil, fmt.Errorf("proto: short v2 binary payload")
		}
		env.bin = append([]byte(nil), pl...)
	default:
		return nil, fmt.Errorf("proto: unknown v2 payload kind %d", kind)
	}
	return env, nil
}

// --- binary payload codecs ---

// Binary payload codec ids (append-only wire constants).
const (
	codecHeartbeat  byte = 1
	codecJobDone    byte = 2
	codecDynGet     byte = 3
	codecDynGetResp byte = 4
	codecRegister   byte = 5
)

// appendBinary writes kind + codec id + fields for the hot payload
// structs; false means the caller should fall back to JSON-in-v2.
// Typed nil pointers fall back too, matching v1's "null" payload.
func appendBinary(buf *bytes.Buffer, payload any) bool {
	switch p := payload.(type) {
	case *HeartbeatReq:
		if p == nil {
			return false
		}
		buf.WriteByte(payloadBin)
		buf.WriteByte(codecHeartbeat)
		encHeartbeat(buf, p)
	case HeartbeatReq:
		buf.WriteByte(payloadBin)
		buf.WriteByte(codecHeartbeat)
		encHeartbeat(buf, &p)
	case *JobDoneReq:
		if p == nil {
			return false
		}
		buf.WriteByte(payloadBin)
		buf.WriteByte(codecJobDone)
		encJobDone(buf, p)
	case JobDoneReq:
		buf.WriteByte(payloadBin)
		buf.WriteByte(codecJobDone)
		encJobDone(buf, &p)
	case *DynGetReq:
		if p == nil {
			return false
		}
		buf.WriteByte(payloadBin)
		buf.WriteByte(codecDynGet)
		encDynGet(buf, p)
	case DynGetReq:
		buf.WriteByte(payloadBin)
		buf.WriteByte(codecDynGet)
		encDynGet(buf, &p)
	case *DynGetResp:
		if p == nil {
			return false
		}
		buf.WriteByte(payloadBin)
		buf.WriteByte(codecDynGetResp)
		encDynGetResp(buf, p)
	case DynGetResp:
		buf.WriteByte(payloadBin)
		buf.WriteByte(codecDynGetResp)
		encDynGetResp(buf, &p)
	case *RegisterReq:
		if p == nil {
			return false
		}
		buf.WriteByte(payloadBin)
		buf.WriteByte(codecRegister)
		encRegister(buf, p)
	case RegisterReq:
		buf.WriteByte(payloadBin)
		buf.WriteByte(codecRegister)
		encRegister(buf, &p)
	default:
		return false
	}
	return true
}

func encHeartbeat(buf *bytes.Buffer, p *HeartbeatReq) {
	putString(buf, p.Node)
	putVarint(buf, p.Seq)
	putVarint(buf, p.SentMS)
}

func encJobDone(buf *bytes.Buffer, p *JobDoneReq) {
	putVarint(buf, int64(p.JobID))
	putString(buf, p.Error)
}

func encDynGet(buf *bytes.Buffer, p *DynGetReq) {
	putVarint(buf, int64(p.JobID))
	putVarint(buf, int64(p.Cores))
	putVarint(buf, int64(p.Nodes))
	putVarint(buf, int64(p.PPN))
	putVarint(buf, p.TimeoutSecs)
}

func encDynGetResp(buf *bytes.Buffer, p *DynGetResp) {
	putVarint(buf, int64(p.JobID))
	putBool(buf, p.Granted)
	putString(buf, p.Reason)
	putUvarint(buf, uint64(len(p.Hosts)))
	for i := range p.Hosts {
		putString(buf, p.Hosts[i].Node)
		putString(buf, p.Hosts[i].Addr)
		putVarint(buf, int64(p.Hosts[i].Cores))
	}
}

func encRegister(buf *bytes.Buffer, p *RegisterReq) {
	putString(buf, p.Node)
	putString(buf, p.Addr)
	putVarint(buf, int64(p.Cores))
	putUvarint(buf, uint64(len(p.Jobs)))
	for _, id := range p.Jobs {
		putVarint(buf, int64(id))
	}
}

// decodeBinary decodes a v2 binary payload (codec id + fields) into
// dst, which must be a pointer to the struct the codec id names.
func decodeBinary(bin []byte, dst any) error {
	codec := bin[0]
	r := binReader{b: bin[1:]}
	switch d := dst.(type) {
	case *HeartbeatReq:
		if codec != codecHeartbeat {
			return codecMismatch(codec, dst)
		}
		d.Node = r.str("node")
		d.Seq = r.varint("seq")
		d.SentMS = r.varint("sent_ms")
	case *JobDoneReq:
		if codec != codecJobDone {
			return codecMismatch(codec, dst)
		}
		d.JobID = int(r.varint("job_id"))
		d.Error = r.str("error")
	case *DynGetReq:
		if codec != codecDynGet {
			return codecMismatch(codec, dst)
		}
		d.JobID = int(r.varint("job_id"))
		d.Cores = int(r.varint("cores"))
		d.Nodes = int(r.varint("nodes"))
		d.PPN = int(r.varint("ppn"))
		d.TimeoutSecs = r.varint("timeout_secs")
	case *DynGetResp:
		if codec != codecDynGetResp {
			return codecMismatch(codec, dst)
		}
		d.JobID = int(r.varint("job_id"))
		d.Granted = r.bool("granted")
		d.Reason = r.str("reason")
		d.Hosts = r.hosts("hosts")
	case *RegisterReq:
		if codec != codecRegister {
			return codecMismatch(codec, dst)
		}
		d.Node = r.str("node")
		d.Addr = r.str("addr")
		d.Cores = int(r.varint("cores"))
		d.Jobs = r.ints("jobs")
	default:
		return fmt.Errorf("proto: cannot decode binary payload into %T", dst)
	}
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("proto: %d trailing bytes in binary payload", len(r.b))
	}
	return nil
}

func codecMismatch(codec byte, dst any) error {
	return fmt.Errorf("proto: binary payload codec %d does not decode into %T", codec, dst)
}

// binReader walks a binary payload, latching the first error.
type binReader struct {
	b   []byte
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("proto: malformed binary payload field %s", what)
	}
}

func (r *binReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *binReader) str(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail(what)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *binReader) bool(what string) bool {
	switch r.uvarint(what) {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(what)
		return false
	}
}

// hosts reads a HostSlice list; zero-length decodes to nil to match
// the JSON omitempty round trip.
func (r *binReader) hosts(what string) []HostSlice {
	n := r.uvarint(what)
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.b)) { // each element costs ≥ 1 byte
		r.fail(what)
		return nil
	}
	hs := make([]HostSlice, n)
	for i := range hs {
		hs[i].Node = r.str(what)
		hs[i].Addr = r.str(what)
		hs[i].Cores = int(r.varint(what))
	}
	return hs
}

// ints reads an int list; zero-length decodes to nil (JSON omitempty).
func (r *binReader) ints(what string) []int {
	n := r.uvarint(what)
	if r.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail(what)
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = int(r.varint(what))
	}
	return vs
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var s [binary.MaxVarintLen64]byte
	buf.Write(s[:binary.PutUvarint(s[:], v)])
}

func putVarint(buf *bytes.Buffer, v int64) {
	var s [binary.MaxVarintLen64]byte
	buf.Write(s[:binary.PutVarint(s[:], v)])
}

func putString(buf *bytes.Buffer, s string) {
	s = coerceUTF8(s)
	putUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func putBool(buf *bytes.Buffer, b bool) {
	if b {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
}

// coerceUTF8 returns s with every invalid UTF-8 byte replaced by
// U+FFFD, exactly as encoding/json does when marshalling a string —
// per byte, not per run (strings.ToValidUTF8 collapses runs and would
// diverge from the v1 bytes the differential fuzz target compares
// against). Valid strings return unchanged with no allocation.
func coerceUTF8(s string) string {
	i := 0
	for i < len(s) {
		if s[i] < utf8.RuneSelf {
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			break
		}
		i += size
	}
	if i == len(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteString(s[:i])
	for i < len(s) {
		if s[i] < utf8.RuneSelf {
			b.WriteByte(s[i])
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b.WriteRune(utf8.RuneError)
			i++
			continue
		}
		b.WriteString(s[i : i+size])
		i += size
	}
	return b.String()
}
