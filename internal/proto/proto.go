// Package proto defines the wire protocol of the live batch system:
// length-prefixed JSON messages over TCP, used on three links that
// mirror the Torque/Maui architecture (Fig. 2 of the paper):
//
//   - client ↔ server (qsub/qstat/qdel)
//   - mom ↔ server (registration, job start, dynamic allocation)
//   - mom ↔ mom (join / dyn_join / dyn_disjoin host-set coordination)
//   - scheduler ↔ server (workload pull, decision commit) when the
//     Maui analog runs as a separate daemon
//
// Every message travels inside an Envelope carrying its type tag; the
// payload is the JSON encoding of the corresponding struct.
package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MsgType tags an envelope's payload.
type MsgType string

// Message types. The trailing `dispatch:<role>` annotation names the
// dispatch switch that consumes each message (schedlint's
// protoexhaustive analyzer keeps the two in lockstep); `dispatch:reply`
// marks responses read inline on the requesting connection.
const (
	// Client → server.
	TQSub  MsgType = "qsub"  // dispatch:server.conn
	TQStat MsgType = "qstat" // dispatch:server.conn
	TQDel  MsgType = "qdel"  // dispatch:server.conn

	// Server → client.
	TQSubResp  MsgType = "qsub.resp"  // dispatch:reply
	TQStatResp MsgType = "qstat.resp" // dispatch:reply

	// Mom → server.
	TRegister  MsgType = "mom.register"  // dispatch:server.conn
	TJobDone   MsgType = "mom.jobdone"   // dispatch:server.mom
	TDynGet    MsgType = "mom.dynget"    // dispatch:server.mom — forwarded tm_dynget (mother superior only)
	TDynFree   MsgType = "mom.dynfree"   // dispatch:server.mom — forwarded tm_dynfree
	THeartbeat MsgType = "mom.heartbeat" // dispatch:server.mom — liveness beacon on the persistent link

	// Server → mom.
	TRunJob     MsgType = "srv.runjob"      // dispatch:mom.server
	TKillJob    MsgType = "srv.killjob"     // dispatch:mom.server
	TDynGetResp MsgType = "srv.dynget.resp" // dispatch:mom.server

	// Mom ↔ mom.
	TJoin       MsgType = "mom.join"       // dispatch:mom.conn
	TDynJoin    MsgType = "mom.dynjoin"    // dispatch:mom.conn
	TDynDisjoin MsgType = "mom.dyndisjoin" // dispatch:mom.conn

	// App ↔ mom (the TM interface).
	TTMDynGet  MsgType = "tm.dynget"  // dispatch:mom.conn
	TTMDynFree MsgType = "tm.dynfree" // dispatch:mom.conn
	TTMDone    MsgType = "tm.done"    // dispatch:mom.conn
	TTMResp    MsgType = "tm.resp"    // dispatch:reply

	// Scheduler ↔ server (external Maui daemon).
	TSchedPull   MsgType = "sched.pull"   // dispatch:server.conn
	TSchedState  MsgType = "sched.state"  // dispatch:reply
	TSchedCommit MsgType = "sched.commit" // dispatch:server.conn

	// Generic replies.
	TOK    MsgType = "ok"    // dispatch:reply
	TError MsgType = "error" // dispatch:reply
)

// Envelope frames every message.
type Envelope struct {
	Type    MsgType         `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`

	// bin holds a v2 binary payload (codec id + varint fields) for the
	// hot message types; nil when the payload travelled as JSON.
	bin []byte
}

// maxFrame bounds a frame to keep a corrupted peer from triggering a
// huge allocation.
const maxFrame = 16 << 20

// Conn is a framed connection, safe for one reader and one writer
// goroutine concurrently (writes are additionally serialized so
// multiple goroutines may send, and Request pairs its send with its
// reply so multiple goroutines may issue requests). A Conn speaks the
// v1 JSON framing until a handshake (ClientHandshake/AcceptHandshake)
// negotiates the v2 binary framing; Version reports the result.
type Conn struct {
	c  net.Conn
	wm sync.Mutex // serializes frame writes
	rm sync.Mutex // serializes frame reads
	qm sync.Mutex // serializes Request send→recv pairs

	ver  atomic.Uint32 // negotiated wire version: 0/1 = v1 JSON, 2 = binary
	peek int32         // guarded by rm: first byte sniffed by AcceptHandshake, -1 = none

	// Deadline state is atomic so SetReadTimeout can unstick a reader
	// already blocked inside Recv (net.Conn deadlines are safe to set
	// concurrently with a blocked Read) instead of queueing on rm
	// behind it.
	readT      atomic.Int64 // per-Recv deadline in ns, 0 = none
	readArmed  atomic.Bool  // the socket currently carries a read deadline
	writeT     atomic.Int64 // per-Send deadline in ns, 0 = none
	writeArmed atomic.Bool  // the socket currently carries a write deadline

	scratch [16]byte // guarded by rm: header scratch, avoids per-Recv escapes
}

// NewConn wraps a net.Conn.
func NewConn(c net.Conn) *Conn { return &Conn{c: c, peek: -1} }

// Dial connects to addr and wraps the connection speaking v1. Use
// DialMode to negotiate the v2 codec.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// Version reports the negotiated wire version (1 or 2). Connections
// that never ran a handshake are v1.
func (c *Conn) Version() int {
	if c.ver.Load() == V2 {
		return V2
	}
	return V1
}

// SetReadTimeout arms a deadline for every subsequent Recv: a peer
// that dribbles bytes (or goes silent mid-frame) errors the read out
// instead of pinning the calling goroutine forever. Zero disables the
// deadline again. Safe to call concurrently with Recv; arming a
// timeout also applies it to the socket immediately, so it unsticks a
// reader that is already blocked.
func (c *Conn) SetReadTimeout(d time.Duration) {
	c.readT.Store(int64(d))
	if d > 0 {
		//lint:wallclock socket deadlines are genuine wall-clock protocol timeouts
		if c.c.SetReadDeadline(time.Now().Add(d)) == nil {
			c.readArmed.Store(true)
		}
	}
	// d == 0: the deadline (if any) is cleared by the next Recv, which
	// sees readT == 0 with readArmed still set. Clearing here instead
	// could race a concurrent Recv arming its own deadline.
}

// SetWriteTimeout arms a deadline for every subsequent Send, bounding
// how long a full peer socket buffer can block a writer. Zero disables
// it. Safe to call concurrently with Send; like SetReadTimeout it
// applies the deadline immediately, unsticking a blocked writer.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	c.writeT.Store(int64(d))
	if d > 0 {
		//lint:wallclock socket deadlines are genuine wall-clock protocol timeouts
		if c.c.SetWriteDeadline(time.Now().Add(d)) == nil {
			c.writeArmed.Store(true)
		}
	}
}

// armDeadline applies one Recv/Send deadline, or clears a previously
// armed one when the timeout has been reset to zero. Unlike the seed
// version it propagates SetDeadline failures — flipping the armed
// state on a failed syscall either leaves a stale deadline poisoning
// every later call (failed clear) or records a deadline that never hit
// the socket (failed arm).
//
//lint:wallclock socket deadlines are genuine wall-clock protocol timeouts
func armDeadline(set func(time.Time) error, t *atomic.Int64, armed *atomic.Bool) error {
	switch d := time.Duration(t.Load()); {
	case d > 0:
		if err := set(time.Now().Add(d)); err != nil {
			return fmt.Errorf("proto: arm deadline: %w", err)
		}
		armed.Store(true)
	case armed.Load():
		if err := set(time.Time{}); err != nil {
			return fmt.Errorf("proto: clear deadline: %w", err)
		}
		armed.Store(false)
	}
	return nil
}

// RemoteAddr exposes the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// sendBuf is the pooled per-Send scratch: one buffer holding the
// complete frame (length prefix + envelope) and a JSON encoder bound
// to it, so the payload is encoded exactly once, directly in place.
type sendBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var sendPool = sync.Pool{New: func() any {
	b := &sendBuf{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// pooledBufLimit caps the buffer size retained by the send/recv pools;
// pathologically large frames (up to maxFrame) are not worth pinning.
const pooledBufLimit = 1 << 16

// writeTag appends the JSON string encoding of a message type. Plain
// ASCII tags — every tag this package defines — take the direct path;
// anything needing escaping or UTF-8 coercion falls back to
// encoding/json so the bytes match the seed codec exactly (the fuzz
// corpus pins invalid-UTF-8 tag coercion).
func writeTag(buf *bytes.Buffer, t MsgType) error {
	for i := 0; i < len(t); i++ {
		b := t[i]
		if b < 0x20 || b >= 0x7f || b == '"' || b == '\\' || b == '<' || b == '>' || b == '&' {
			enc, err := json.Marshal(string(t))
			if err != nil {
				return err
			}
			buf.Write(enc)
			return nil
		}
	}
	buf.WriteByte('"')
	buf.WriteString(string(t))
	buf.WriteByte('"')
	return nil
}

// Send marshals payload and writes one frame in the negotiated wire
// version. The v1 envelope is built in a single pass into a pooled
// buffer — no intermediate payload slice, no re-scan of the payload
// bytes by an outer envelope marshal — and the length prefix and body
// go out in one Write.
func (c *Conn) Send(t MsgType, payload any) error {
	if c.ver.Load() == V2 {
		return c.sendV2(t, payload)
	}
	sb := sendPool.Get().(*sendBuf)
	defer func() {
		if sb.buf.Cap() <= pooledBufLimit {
			sendPool.Put(sb)
		}
	}()
	sb.buf.Reset()
	sb.buf.Write([]byte{0, 0, 0, 0}) // length prefix placeholder
	sb.buf.WriteString(`{"type":`)
	if err := writeTag(&sb.buf, t); err != nil {
		return err
	}
	if payload != nil {
		sb.buf.WriteString(`,"payload":`)
		if err := sb.enc.Encode(payload); err != nil {
			return fmt.Errorf("proto: marshal %s: %w", t, err)
		}
		sb.buf.Truncate(sb.buf.Len() - 1) // Encode appends '\n'
	}
	sb.buf.WriteByte('}')
	frame := sb.buf.Bytes()
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	c.wm.Lock()
	defer c.wm.Unlock()
	if err := armDeadline(c.c.SetWriteDeadline, &c.writeT, &c.writeArmed); err != nil {
		return err
	}
	_, err := c.c.Write(frame)
	return err
}

var recvPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// Recv reads one frame and returns its envelope. The frame is read
// into a pooled buffer; unmarshalling copies the payload out (a
// json.RawMessage field always copies), so the buffer is recycled as
// soon as decoding finishes.
func (c *Conn) Recv() (*Envelope, error) {
	c.rm.Lock()
	defer c.rm.Unlock()
	if err := armDeadline(c.c.SetReadDeadline, &c.readT, &c.readArmed); err != nil {
		return nil, err
	}
	if c.ver.Load() == V2 {
		return c.recvV2()
	}
	hdr := c.scratch[:4]
	if b := c.peek; b >= 0 {
		// AcceptHandshake consumed one byte while sniffing for the v2
		// magic; it belongs to this first v1 frame.
		c.peek = -1
		hdr[0] = byte(b)
		if _, err := io.ReadFull(c.c, hdr[1:]); err != nil {
			return nil, err
		}
	} else if _, err := io.ReadFull(c.c, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > maxFrame {
		return nil, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	bp := recvPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	defer func() {
		if cap(buf) <= pooledBufLimit {
			*bp = buf[:0]
		}
		recvPool.Put(bp)
	}()
	if _, err := io.ReadFull(c.c, buf); err != nil {
		return nil, err
	}
	var env Envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return nil, fmt.Errorf("proto: bad envelope: %w", err)
	}
	return &env, nil
}

// Decode unmarshals an envelope payload into dst. JSON payloads merge
// into dst (absent fields keep their values); v2 binary payloads
// assign every field.
func (e *Envelope) Decode(dst any) error {
	if len(e.bin) > 0 {
		return decodeBinary(e.bin, dst)
	}
	if len(e.Payload) == 0 {
		return fmt.Errorf("proto: %s has no payload", e.Type)
	}
	return json.Unmarshal(e.Payload, dst)
}

// Request sends one message and waits for a single reply — the
// client-command pattern (qsub and friends). The pairing lock keeps
// concurrent requesters from receiving each other's replies: wm and rm
// individually serialize Send and Recv, but without qm goroutine B's
// send could slip between A's send and A's recv, after which whichever
// goroutine wins rm gets the first reply.
func (c *Conn) Request(t MsgType, payload any) (*Envelope, error) {
	c.qm.Lock()
	defer c.qm.Unlock()
	if err := c.Send(t, payload); err != nil {
		return nil, err
	}
	return c.Recv()
}

// --- payload structs ---

// JobSpec is what qsub submits.
type JobSpec struct {
	Name     string `json:"name"`
	User     string `json:"user"`
	Group    string `json:"group,omitempty"`
	Account  string `json:"account,omitempty"`
	Cores    int    `json:"cores,omitempty"` // core-granular request
	Nodes    int    `json:"nodes,omitempty"` // node-granular request
	PPN      int    `json:"ppn,omitempty"`
	WallSecs int64  `json:"wall_secs"`
	// Script selects the application: "sleep:<dur>", "go:<name>"
	// (process-registered Go function), or "exec:<cmdline>".
	Script   string `json:"script"`
	Evolving bool   `json:"evolving,omitempty"`
	// SystemPriority lifts the job over all others (ESP Z jobs).
	SystemPriority int64 `json:"sysprio,omitempty"`
}

// HostSlice is part of an allocation on one node.
type HostSlice struct {
	Node  string `json:"node"`
	Addr  string `json:"addr"` // mom address for joins / TM spawns
	Cores int    `json:"cores"`
}

// QSubResp acknowledges a submission.
type QSubResp struct {
	JobID int    `json:"job_id"`
	Error string `json:"error,omitempty"`
}

// JobStatus is one qstat row.
type JobStatus struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	User     string  `json:"user"`
	State    string  `json:"state"`
	Cores    int     `json:"cores"`
	DynCores int     `json:"dyn_cores"`
	WaitSecs float64 `json:"wait_secs"`
	Hosts    []HostSlice
}

// QStatResp lists queue contents and node states.
type QStatResp struct {
	Jobs  []JobStatus  `json:"jobs"`
	Nodes []NodeStatus `json:"nodes"`
}

// NodeStatus is one node row of qstat/pbsnodes output.
type NodeStatus struct {
	Name  string `json:"name"`
	Cores int    `json:"cores"`
	Used  int    `json:"used"`
	State string `json:"state"`
}

// QDelReq cancels a job.
type QDelReq struct {
	JobID int `json:"job_id"`
}

// RegisterReq announces a mom to the server. On a re-registration
// (mom restart or reconnection after a link failure) Jobs carries the
// ids of every job the mom still participates in, so the server can
// reconcile: jobs the server runs on the node but the mom no longer
// knows are handled by the failure policy, and jobs the mom reports
// but the server has moved past are killed on the mom.
type RegisterReq struct {
	Node  string `json:"node"`
	Addr  string `json:"addr"` // mom's listen address for TM/joins
	Cores int    `json:"cores"`
	Jobs  []int  `json:"jobs,omitempty"`
}

// HeartbeatReq is the mom's periodic liveness beacon. The server
// declares a node down after HeartbeatMisses beats go missing and
// routes the affected jobs through its failure policy.
type HeartbeatReq struct {
	Node string `json:"node"`
	Seq  int64  `json:"seq"`
	// SentMS is the sender's wall clock in Unix milliseconds when the
	// beat left the mom (0 = not recorded). The server's soak
	// instrumentation uses it to measure heartbeat→stamp latency.
	SentMS int64 `json:"sent_ms,omitempty"`
}

// RunJobReq starts a job on its mother superior (Hosts[0]).
type RunJobReq struct {
	JobID int         `json:"job_id"`
	Spec  JobSpec     `json:"spec"`
	Hosts []HostSlice `json:"hosts"`
}

// KillJobReq stops a running job (walltime or qdel).
type KillJobReq struct {
	JobID int `json:"job_id"`
}

// JobDoneReq reports completion from the mother superior.
type JobDoneReq struct {
	JobID int    `json:"job_id"`
	Error string `json:"error,omitempty"`
}

// DynGetReq is the forwarded tm_dynget (Fig. 3 step 2→3).
type DynGetReq struct {
	JobID int `json:"job_id"`
	Cores int `json:"cores,omitempty"`
	Nodes int `json:"nodes,omitempty"`
	PPN   int `json:"ppn,omitempty"`
	// TimeoutSecs > 0 selects the negotiation protocol: the request
	// stays queued until granted or the timeout passes.
	TimeoutSecs int64 `json:"timeout_secs,omitempty"`
}

// DynGetResp returns the verdict and, if granted, the new hosts
// (Fig. 3 step 5→6).
type DynGetResp struct {
	JobID   int         `json:"job_id"`
	Granted bool        `json:"granted"`
	Reason  string      `json:"reason,omitempty"`
	Hosts   []HostSlice `json:"hosts,omitempty"`
}

// DynFreeReq releases part of an allocation (Fig. 4).
type DynFreeReq struct {
	JobID int         `json:"job_id"`
	Hosts []HostSlice `json:"hosts"`
}

// JoinReq is the mom↔mom (dyn_)join handshake.
type JoinReq struct {
	JobID   int         `json:"job_id"`
	Dynamic bool        `json:"dynamic"` // dyn_join vs initial join
	Hosts   []HostSlice `json:"hosts"`
}

// TMDynGetReq is the application-side tm_dynget call.
type TMDynGetReq struct {
	JobID int `json:"job_id"`
	Cores int `json:"cores,omitempty"`
	Nodes int `json:"nodes,omitempty"`
	PPN   int `json:"ppn,omitempty"`
	// TimeoutSecs > 0 selects the negotiation protocol.
	TimeoutSecs int64 `json:"timeout_secs,omitempty"`
}

// TMDynFreeReq is the application-side tm_dynfree call.
type TMDynFreeReq struct {
	JobID int         `json:"job_id"`
	Hosts []HostSlice `json:"hosts"`
}

// TMDoneReq tells the local mom the application finished.
type TMDoneReq struct {
	JobID int    `json:"job_id"`
	Error string `json:"error,omitempty"`
}

// TMResp answers any TM call.
type TMResp struct {
	OK     bool        `json:"ok"`
	Reason string      `json:"reason,omitempty"`
	Hosts  []HostSlice `json:"hosts,omitempty"`
}

// ErrorResp carries a failure back to the requester.
type ErrorResp struct {
	Error string `json:"error"`
}

// SchedJob is one job in the scheduler's workload snapshot.
type SchedJob struct {
	ID         int    `json:"id"`
	Name       string `json:"name"`
	User       string `json:"user"`
	Group      string `json:"group"`
	State      string `json:"state"`
	Cores      int    `json:"cores"`
	DynCores   int    `json:"dyn_cores"`
	WallSecs   int64  `json:"wall_secs"`
	SubmitMS   int64  `json:"submit_ms"`
	StartMS    int64  `json:"start_ms"`
	SysPrio    int64  `json:"sysprio"`
	Evolving   bool   `json:"evolving"`
	Backfilled bool   `json:"backfilled"`
}

// SchedDynReq is one pending dynamic request in the snapshot.
type SchedDynReq struct {
	JobID int `json:"job_id"`
	Cores int `json:"cores,omitempty"`
	Nodes int `json:"nodes,omitempty"`
	PPN   int `json:"ppn,omitempty"`
	Seq   int `json:"seq"`
	// DeadlineMS carries the negotiation deadline (0 = immediate
	// verdict semantics).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SchedState is the full snapshot an external scheduler plans against.
type SchedState struct {
	NowMS  int64         `json:"now_ms"`
	Nodes  []NodeStatus  `json:"nodes"`
	Queued []SchedJob    `json:"queued"`
	Active []SchedJob    `json:"active"`
	Dyn    []SchedDynReq `json:"dyn"`
	Serial uint64        `json:"serial"` // state version for commit validation
}

// SchedAction is one decision in a commit.
type SchedAction struct {
	// Kind: "start", "grant", "reject".
	Kind   string `json:"kind"`
	JobID  int    `json:"job_id"`
	Reason string `json:"reason,omitempty"`
}

// SchedCommit ships the iteration's decisions back to the server.
type SchedCommit struct {
	Serial  uint64        `json:"serial"`
	Actions []SchedAction `json:"actions"`
}

// SchedCommitResp reports how many actions were applied (stale ones
// are skipped, not errors).
type SchedCommitResp struct {
	Applied int `json:"applied"`
	Skipped int `json:"skipped"`
}
