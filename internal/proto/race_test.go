//go:build race

package proto

// raceEnabled lets the allocation-regression guards skip under the
// race detector, whose instrumentation inflates per-call counts.
const raceEnabled = true
