package proto_test

import (
	"encoding/json"
	"io"
	"net"
	"reflect"
	"testing"

	"repro/internal/proto"
)

// FuzzConnRoundTrip drives a full Send→Recv→Decode cycle over an
// in-process pipe with arbitrary message types and payloads: whatever
// JSON can carry must arrive bit-identically on the other side.
func FuzzConnRoundTrip(f *testing.F) {
	f.Add("qsub", `{"name":"a"}`)
	f.Add("ok", "")
	f.Add("sched.commit", "payload with \x00, quotes \" and ünicode ☃")
	f.Fuzz(func(t *testing.T, typ, payload string) {
		a, b := net.Pipe()
		ca, cb := proto.NewConn(a), proto.NewConn(b)
		defer ca.Close()
		defer cb.Close()
		sendErr := make(chan error, 1)
		go func() { sendErr <- ca.Send(proto.MsgType(typ), payload) }()
		env, err := cb.Recv()
		if serr := <-sendErr; serr != nil {
			t.Fatalf("send: %v", serr)
		}
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		// The wire must preserve exactly what encoding/json preserves:
		// Marshal coerces invalid UTF-8 (in the type tag and in string
		// payloads) to U+FFFD before it hits the wire, so compare
		// against the local JSON round trip, not the raw input.
		if want := jsonRoundTrip(t, typ); string(env.Type) != want {
			t.Fatalf("type = %q, want %q", env.Type, want)
		}
		var got string
		if derr := env.Decode(&got); derr != nil {
			t.Fatalf("decode: %v", derr)
		}
		if want := jsonRoundTrip(t, payload); got != want {
			t.Fatalf("payload = %q, want %q", got, want)
		}
	})
}

// jsonRoundTrip returns s as it survives one encoding/json cycle.
func jsonRoundTrip(t *testing.T, s string) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal %q: %v", s, err)
	}
	var out string
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal %q: %v", b, err)
	}
	return out
}

// FuzzConnMalformedFrame feeds raw attacker-controlled bytes to Recv:
// truncated length prefixes, oversized declared lengths and invalid
// JSON must all produce a clean error — never a panic, a hang, or a
// giant allocation driven by the declared frame length.
func FuzzConnMalformedFrame(f *testing.F) {
	f.Add([]byte{0x00, 0x00})                                         // truncated length prefix
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})                        // declared length over maxFrame
	f.Add(append([]byte{0x00, 0x00, 0x00, 0x03}, "xyz"...))           // invalid JSON payload
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, '{', '"'})                   // declared length beyond the data
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, '{', '}'})                   // minimal valid envelope
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})                             // zero-length frame
	f.Add(append([]byte{0x00, 0x00, 0x00, 0x0d}, `{"type":"ok"}`...)) // payload-less envelope
	f.Add([]byte{0xF2, 'P', 'B', 0x02})                               // v2 magic fed to a v1 reader
	f.Fuzz(func(t *testing.T, frame []byte) {
		peer, ours := net.Pipe()
		go func() {
			_, _ = peer.Write(frame)
			_ = peer.Close() // EOF unblocks a Recv waiting for more bytes
		}()
		c := proto.NewConn(ours)
		defer c.Close()
		env, err := c.Recv()
		if err == nil && env == nil {
			t.Fatal("Recv returned neither an envelope nor an error")
		}
	})
}

// FuzzV2MalformedFrame is the v2 counterpart: after a real handshake,
// raw attacker bytes — zero-length frames, truncated tag tables,
// overlong length varints, bogus payload kinds — must produce a clean
// Recv error, never a panic, a hang, or a length-driven allocation.
func FuzzV2MalformedFrame(f *testing.F) {
	f.Add([]byte{})                                   // immediate EOF
	f.Add([]byte{0x00})                               // zero-length frame
	f.Add([]byte{0x01, 0x0a})                         // tag with no payload kind
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})       // unterminated length varint
	f.Add([]byte{0x81, 0x80, 0x80, 0x09})             // declared length over maxFrame
	f.Add([]byte{0x04, 0x00, 0x0a, 'a', 'b'})         // truncated literal tag table entry
	f.Add([]byte{0x02, 26, 0x00})                     // unknown tag id
	f.Add([]byte{0x03, 0x0a, 0x02, 0x01})             // short binary payload
	f.Add([]byte{0x05, 0x07, 0x02, 0x02, 0x0e, 0x00}) // valid binary jobdone
	f.Fuzz(func(t *testing.T, frame []byte) {
		peer, ours := net.Pipe()
		go func() {
			hello := []byte{0xF2, 'P', 'B', 0x02}
			if _, err := peer.Write(hello); err != nil {
				return
			}
			var reply [4]byte
			if _, err := io.ReadFull(peer, reply[:]); err != nil {
				return
			}
			_, _ = peer.Write(frame)
			_ = peer.Close()
		}()
		c := proto.NewConn(ours)
		defer c.Close()
		if err := c.AcceptHandshake(proto.ModeAuto); err != nil {
			t.Fatalf("handshake: %v", err)
		}
		if c.Version() != 2 {
			t.Fatalf("negotiated %d, want 2", c.Version())
		}
		env, err := c.Recv()
		if err == nil && env == nil {
			t.Fatal("Recv returned neither an envelope nor an error")
		}
	})
}

// FuzzCodecDifferential proves the tentpole's equivalence claim: every
// hot payload struct must decode to the identical value whether it
// travelled through the v1 JSON framing or the v2 binary framing —
// including invalid-UTF-8 coercion, negative and 64-bit ints, and
// empty-slice/omitempty parity.
func FuzzCodecDifferential(f *testing.F) {
	f.Add("mom-001", int64(7), int64(1723), 42, "", 8, 2, 4, int64(30), true, "busy", "127.0.0.1:15002", 16, uint8(2), uint8(3))
	f.Add("\xff\xfe", int64(-1), int64(0), -9, "exit 1 \xed\xa0\x80", 0, 0, 0, int64(0), false, "", "", -1, uint8(0), uint8(0))
	// 1<<30, not 1<<40: the jobID argument is a plain int and the
	// GOARCH=386 CI step vets this file on a 32-bit int.
	f.Add("n", int64(1)<<62, int64(-5), 1<<30, "é", -3, 1, 1, int64(-60), true, "r \x00 s", "addr", 0, uint8(9), uint8(1))
	f.Fuzz(func(t *testing.T, node string, seq, sent int64, jobID int, errStr string,
		cores, nnodes, ppn int, timeoutSecs int64, granted bool, reason, addr string,
		hCores int, nHosts, nJobs uint8) {
		hosts := make([]proto.HostSlice, int(nHosts)%4)
		for i := range hosts {
			hosts[i] = proto.HostSlice{Node: node, Addr: addr, Cores: hCores + i}
		}
		jobs := make([]int, int(nJobs)%5)
		for i := range jobs {
			jobs[i] = jobID + i
		}
		payloads := []struct {
			typ proto.MsgType
			val any
		}{
			{proto.THeartbeat, &proto.HeartbeatReq{Node: node, Seq: seq, SentMS: sent}},
			{proto.TJobDone, &proto.JobDoneReq{JobID: jobID, Error: errStr}},
			{proto.TDynGet, &proto.DynGetReq{JobID: jobID, Cores: cores, Nodes: nnodes, PPN: ppn, TimeoutSecs: timeoutSecs}},
			{proto.TDynGetResp, &proto.DynGetResp{JobID: jobID, Granted: granted, Reason: reason, Hosts: hosts}},
			{proto.TRegister, &proto.RegisterReq{Node: node, Addr: addr, Cores: cores, Jobs: jobs}},
		}
		for _, p := range payloads {
			v1 := tripOnce(t, proto.ModeV1, p.typ, p.val)
			v2 := tripOnce(t, proto.ModeV2, p.typ, p.val)
			if !reflect.DeepEqual(v1, v2) {
				t.Fatalf("differential mismatch for %s:\n v1: %#v\n v2: %#v", p.typ, v1, v2)
			}
		}
	})
}

// tripOnce round-trips payload through a fresh pair at the given mode
// and returns the decoded struct (same concrete type as payload).
func tripOnce(t *testing.T, m proto.Mode, typ proto.MsgType, payload any) any {
	t.Helper()
	ca, cb := handshakePair(t, m)
	defer ca.Close()
	defer cb.Close()
	sendErr := make(chan error, 1)
	go func() { sendErr <- ca.Send(typ, payload) }()
	env, err := cb.Recv()
	if serr := <-sendErr; serr != nil {
		t.Fatalf("%s send %s: %v", m, typ, serr)
	}
	if err != nil {
		t.Fatalf("%s recv %s: %v", m, typ, err)
	}
	if env.Type != typ {
		t.Fatalf("%s type = %q, want %q", m, env.Type, typ)
	}
	dst := reflect.New(reflect.TypeOf(payload).Elem()).Interface()
	if err := env.Decode(dst); err != nil {
		t.Fatalf("%s decode %s: %v", m, typ, err)
	}
	return dst
}
