package proto_test

import (
	"encoding/json"
	"net"
	"testing"

	"repro/internal/proto"
)

// FuzzConnRoundTrip drives a full Send→Recv→Decode cycle over an
// in-process pipe with arbitrary message types and payloads: whatever
// JSON can carry must arrive bit-identically on the other side.
func FuzzConnRoundTrip(f *testing.F) {
	f.Add("qsub", `{"name":"a"}`)
	f.Add("ok", "")
	f.Add("sched.commit", "payload with \x00, quotes \" and ünicode ☃")
	f.Fuzz(func(t *testing.T, typ, payload string) {
		a, b := net.Pipe()
		ca, cb := proto.NewConn(a), proto.NewConn(b)
		defer ca.Close()
		defer cb.Close()
		sendErr := make(chan error, 1)
		go func() { sendErr <- ca.Send(proto.MsgType(typ), payload) }()
		env, err := cb.Recv()
		if serr := <-sendErr; serr != nil {
			t.Fatalf("send: %v", serr)
		}
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		// The wire must preserve exactly what encoding/json preserves:
		// Marshal coerces invalid UTF-8 (in the type tag and in string
		// payloads) to U+FFFD before it hits the wire, so compare
		// against the local JSON round trip, not the raw input.
		if want := jsonRoundTrip(t, typ); string(env.Type) != want {
			t.Fatalf("type = %q, want %q", env.Type, want)
		}
		var got string
		if derr := env.Decode(&got); derr != nil {
			t.Fatalf("decode: %v", derr)
		}
		if want := jsonRoundTrip(t, payload); got != want {
			t.Fatalf("payload = %q, want %q", got, want)
		}
	})
}

// jsonRoundTrip returns s as it survives one encoding/json cycle.
func jsonRoundTrip(t *testing.T, s string) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal %q: %v", s, err)
	}
	var out string
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal %q: %v", b, err)
	}
	return out
}

// FuzzConnMalformedFrame feeds raw attacker-controlled bytes to Recv:
// truncated length prefixes, oversized declared lengths and invalid
// JSON must all produce a clean error — never a panic, a hang, or a
// giant allocation driven by the declared frame length.
func FuzzConnMalformedFrame(f *testing.F) {
	f.Add([]byte{0x00, 0x00})                               // truncated length prefix
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})              // declared length over maxFrame
	f.Add(append([]byte{0x00, 0x00, 0x00, 0x03}, "xyz"...)) // invalid JSON payload
	f.Add([]byte{0x00, 0x00, 0x00, 0x10, '{', '"'})         // declared length beyond the data
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, '{', '}'})         // minimal valid envelope
	f.Fuzz(func(t *testing.T, frame []byte) {
		peer, ours := net.Pipe()
		go func() {
			_, _ = peer.Write(frame)
			_ = peer.Close() // EOF unblocks a Recv waiting for more bytes
		}()
		c := proto.NewConn(ours)
		defer c.Close()
		env, err := c.Recv()
		if err == nil && env == nil {
			t.Fatal("Recv returned neither an envelope nor an error")
		}
	})
}
