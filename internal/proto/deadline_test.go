package proto

import (
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestReadTimeoutFiresOnSilentPeer: a hung peer (accepts, never
// writes) must not block Recv forever once a read timeout is armed.
func TestReadTimeoutFiresOnSilentPeer(t *testing.T) {
	cli, _ := pipePair(t)
	cli.SetReadTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err := cli.Recv()
	if err == nil {
		t.Fatal("Recv from a silent peer with a deadline must fail")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("want a timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, deadline not honored", elapsed)
	}
}

// TestReadTimeoutDisarm: SetReadTimeout(0) must clear a previously
// armed deadline so a slow-but-alive peer is served normally.
func TestReadTimeoutDisarm(t *testing.T) {
	cli, srv := pipePair(t)
	cli.SetReadTimeout(50 * time.Millisecond)
	cli.SetReadTimeout(0)
	go func() {
		time.Sleep(150 * time.Millisecond) // well past the stale deadline
		_ = srv.Send(TOK, nil)
	}()
	env, err := cli.Recv()
	if err != nil || env.Type != TOK {
		t.Fatalf("Recv after disarm = %v, %v", env, err)
	}
}

// TestSetReadTimeoutUnsticksBlockedReader: arming a timeout must reach
// a Recv that is already blocked on a silent peer. The seed queued the
// store behind rm — held for the whole blocking read — so the documented
// "safe to call concurrently with Recv" could never actually interrupt
// one; this test hangs (and fails on the 2s guard) there.
func TestSetReadTimeoutUnsticksBlockedReader(t *testing.T) {
	cli, _ := pipePair(t)
	got := make(chan error, 1)
	go func() {
		_, err := cli.Recv()
		got <- err
	}()
	time.Sleep(100 * time.Millisecond) // let Recv block with no deadline armed
	cli.SetReadTimeout(50 * time.Millisecond)
	select {
	case err := <-got:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Errorf("unstuck Recv = %v, want timeout", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SetReadTimeout did not unstick the blocked reader")
	}
}

// faultyConn fails deadline syscalls on demand, modeling a socket
// whose fd has gone bad underneath the Conn.
type faultyConn struct {
	net.Conn
	fail atomic.Bool
}

func (f *faultyConn) SetReadDeadline(tm time.Time) error {
	if f.fail.Load() {
		return errors.New("injected deadline failure")
	}
	return f.Conn.SetReadDeadline(tm)
}

// rawPair returns a connected TCP pair.
func rawPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var srv net.Conn
	done := make(chan struct{})
	go func() {
		srv, _ = ln.Accept()
		close(done)
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if srv == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

// TestFailedDeadlineArmSurfaces: Recv must report a failed deadline
// arm instead of silently proceeding to read without one — the seed
// discarded the error and flipped the armed flag anyway.
func TestFailedDeadlineArmSurfaces(t *testing.T) {
	cliRaw, _ := rawPair(t)
	fc := &faultyConn{Conn: cliRaw}
	fc.fail.Store(true)
	c := NewConn(fc)
	c.SetReadTimeout(50 * time.Millisecond)
	if _, err := c.Recv(); err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("Recv with failing SetReadDeadline = %v, want arm error", err)
	}
}

// TestFailedDeadlineClearRetries: when one zero-reset fails, the armed
// state must stay set so the next Recv retries the clear — the seed
// flipped it to false on the failed syscall, leaving a stale deadline
// on the socket that poisons every later Recv with instant timeouts.
func TestFailedDeadlineClearRetries(t *testing.T) {
	cliRaw, srvRaw := rawPair(t)
	fc := &faultyConn{Conn: cliRaw}
	cli, srv := NewConn(fc), NewConn(srvRaw)
	cli.SetReadTimeout(30 * time.Millisecond)
	if _, err := cli.Recv(); err == nil {
		t.Fatal("priming Recv should time out")
	}
	fc.fail.Store(true)
	cli.SetReadTimeout(0)
	if _, err := cli.Recv(); err == nil {
		t.Fatal("Recv across a failing deadline clear should error")
	}
	fc.fail.Store(false)
	go func() {
		time.Sleep(150 * time.Millisecond) // well past the stale deadline
		_ = srv.Send(TOK, nil)
	}()
	env, err := cli.Recv()
	if err != nil || env.Type != TOK {
		t.Fatalf("Recv after clear retry = %v, %v; stale deadline still armed", env, err)
	}
}

// TestWriteTimeoutFiresOnStuckPeer: a peer that never drains its
// socket must eventually fail a deadlined Send instead of wedging the
// daemon's sender.
func TestWriteTimeoutFiresOnStuckPeer(t *testing.T) {
	cli, _ := pipePair(t)
	cli.SetWriteTimeout(50 * time.Millisecond)
	// Large enough to overwhelm both kernel socket buffers; the peer
	// never reads, so the write must block and then time out.
	payload := strings.Repeat("x", 1<<24)
	var err error
	for i := 0; i < 8 && err == nil; i++ {
		err = cli.Send(TError, ErrorResp{Error: payload})
	}
	if err == nil {
		t.Fatal("Send to a stuck peer with a deadline never failed")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("want a timeout error, got %v", err)
	}
}
