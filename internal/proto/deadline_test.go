package proto

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// TestReadTimeoutFiresOnSilentPeer: a hung peer (accepts, never
// writes) must not block Recv forever once a read timeout is armed.
func TestReadTimeoutFiresOnSilentPeer(t *testing.T) {
	cli, _ := pipePair(t)
	cli.SetReadTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err := cli.Recv()
	if err == nil {
		t.Fatal("Recv from a silent peer with a deadline must fail")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("want a timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, deadline not honored", elapsed)
	}
}

// TestReadTimeoutDisarm: SetReadTimeout(0) must clear a previously
// armed deadline so a slow-but-alive peer is served normally.
func TestReadTimeoutDisarm(t *testing.T) {
	cli, srv := pipePair(t)
	cli.SetReadTimeout(50 * time.Millisecond)
	cli.SetReadTimeout(0)
	go func() {
		time.Sleep(150 * time.Millisecond) // well past the stale deadline
		_ = srv.Send(TOK, nil)
	}()
	env, err := cli.Recv()
	if err != nil || env.Type != TOK {
		t.Fatalf("Recv after disarm = %v, %v", env, err)
	}
}

// TestWriteTimeoutFiresOnStuckPeer: a peer that never drains its
// socket must eventually fail a deadlined Send instead of wedging the
// daemon's sender.
func TestWriteTimeoutFiresOnStuckPeer(t *testing.T) {
	cli, _ := pipePair(t)
	cli.SetWriteTimeout(50 * time.Millisecond)
	// Large enough to overwhelm both kernel socket buffers; the peer
	// never reads, so the write must block and then time out.
	payload := strings.Repeat("x", 1<<24)
	var err error
	for i := 0; i < 8 && err == nil; i++ {
		err = cli.Send(TError, ErrorResp{Error: payload})
	}
	if err == nil {
		t.Fatal("Send to a stuck peer with a deadline never failed")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("want a timeout error, got %v", err)
	}
}
