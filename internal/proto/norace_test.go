//go:build !race

package proto

const raceEnabled = false
