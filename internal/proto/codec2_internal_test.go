package proto

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
)

// v2Pair returns an in-memory pair pinned to the v2 framing. The
// version is forced directly — the handshake itself is covered by the
// integration tests — so malformed-frame bytes can be injected
// without a negotiating peer.
func v2Pair(t testing.TB) (*Conn, net.Conn) {
	t.Helper()
	peer, ours := net.Pipe()
	c := NewConn(ours)
	c.ver.Store(V2)
	t.Cleanup(func() {
		_ = c.Close()
		_ = peer.Close()
	})
	return c, peer
}

// TestV2MalformedFrames: every malformed v2 byte sequence must surface
// as a clean Recv error — never a panic, a hang, or an attacker-sized
// allocation.
func TestV2MalformedFrames(t *testing.T) {
	cases := []struct {
		name  string
		bytes []byte
	}{
		{"zero-length frame", []byte{0x00}},
		{"length over maxFrame", []byte{0x81, 0x80, 0x80, 0x09}}, // uvarint 18<<20
		{"unterminated length varint", []byte{0xff, 0xff, 0xff, 0xff, 0xff}},
		{"tag only, no kind", []byte{0x01, 0x0a}},
		{"unknown tag id", []byte{0x02, 26, 0x00}},
		{"truncated literal tag", []byte{0x04, 0x00, 0x0a, 'a', 'b'}},
		{"unknown payload kind", []byte{0x03, 0x0a, 0x09, 0x00}},
		{"empty JSON payload", []byte{0x02, 0x0a, 0x01}},
		{"short binary payload", []byte{0x03, 0x0a, 0x02, 0x01}},
		{"trailing bytes after empty payload", []byte{0x03, 0x0a, 0x00, 0x00}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, peer := v2Pair(t)
			go func() {
				_, _ = peer.Write(tc.bytes)
				_ = peer.Close()
			}()
			if env, err := c.Recv(); err == nil {
				t.Fatalf("Recv(%x) = %+v, want error", tc.bytes, env)
			}
		})
	}
}

// TestV2TruncatedBinaryPayload: a binary payload cut mid-field must
// error out of Decode, not fabricate zero values.
func TestV2TruncatedBinaryPayload(t *testing.T) {
	c, peer := v2Pair(t)
	// heartbeat codec: node="ab" but only one byte of it present.
	body := []byte{byte(tagID[THeartbeat]), payloadBin, codecHeartbeat, 0x02, 'a'}
	frame := append([]byte{byte(len(body))}, body...)
	go func() {
		_, _ = peer.Write(frame)
		_ = peer.Close()
	}()
	env, err := c.Recv()
	if err != nil {
		t.Fatalf("framing should accept the bytes: %v", err)
	}
	var hb HeartbeatReq
	if err := env.Decode(&hb); err == nil || !strings.Contains(err.Error(), "node") {
		t.Fatalf("Decode of truncated heartbeat = %+v, %v; want field error", hb, err)
	}
}

// TestV2TrailingBinaryBytes: extra bytes after the last field are a
// framing violation, not silently ignored padding.
func TestV2TrailingBinaryBytes(t *testing.T) {
	c, peer := v2Pair(t)
	body := []byte{byte(tagID[TJobDone]), payloadBin, codecJobDone,
		0x0e /* job_id=7 */, 0x00 /* error="" */, 0xAA /* trailing */}
	frame := append([]byte{byte(len(body))}, body...)
	go func() {
		_, _ = peer.Write(frame)
		_ = peer.Close()
	}()
	env, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var jd JobDoneReq
	if err := env.Decode(&jd); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("Decode with trailing bytes = %+v, %v; want trailing-bytes error", jd, err)
	}
}

func TestCoerceUTF8MatchesJSON(t *testing.T) {
	cases := []string{
		"", "plain ascii", "ünicode ☃", "\xff", "a\xffb", "\xff\xfe\xfd",
		"trunc \xe2\x82", "\xed\xa0\x80 surrogate", "mixed\x00\xf0\x9f\x9a\x80ok",
	}
	for _, s := range cases {
		if got, want := coerceUTF8(s), jsonCoerce(t, s); got != want {
			t.Errorf("coerceUTF8(%q) = %q, want %q (encoding/json)", s, got, want)
		}
	}
}

func jsonCoerce(t *testing.T, s string) string {
	t.Helper()
	type w struct{ S string }
	b, err := json.Marshal(w{S: s})
	if err != nil {
		t.Fatal(err)
	}
	var out w
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out.S
}
