// Package campaign fans independent simulation runs across a bounded
// pool of workers while guaranteeing deterministic output: results are
// keyed by task index — never by completion order — so a campaign run
// at any worker count is byte-identical to a serial run.
//
// The package exists for fleet-scale experiment sweeps (every ESP
// configuration × seed, every Fig. 12 point, evolving-fraction and
// cluster-size sweeps): each task builds its own engine, cluster,
// scheduler and recorder, so tasks share no mutable state and the only
// coordination is the index counter and the result slot. Dispatch and
// merge are slice-indexed throughout; ranging a map anywhere in this
// package is a schedlint error (maporder), because map order would be
// the one way to smuggle nondeterminism back in.
package campaign

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configure a campaign run.
type Options struct {
	// Workers bounds concurrency; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, when set, observes completion: it is called exactly
	// once per finished task with the running done-count and the
	// total. Calls are serialized and done is strictly increasing, but
	// which task just finished is deliberately not exposed — progress
	// is the only place completion order may be observed, and nothing
	// downstream may depend on it.
	OnProgress func(done, total int)
}

// Run executes every task on a bounded worker pool and returns their
// results keyed by task index. Tasks must be independent: they are
// claimed in increasing index order, but may complete in any order.
func Run[T any](tasks []func() T, opts Options) []T {
	n := len(tasks)
	results := make([]T, n)
	if n == 0 {
		return results
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial reference path: no goroutines at all, so a serial
		// campaign is exactly a loop — the baseline parallel runs are
		// verified bit-identical against.
		for i, task := range tasks {
			results[i] = task()
			if opts.OnProgress != nil {
				opts.OnProgress(i+1, n)
			}
		}
		return results
	}

	var (
		next atomic.Int64 // next unclaimed task index
		mu   sync.Mutex   // serializes done counting + OnProgress
		done int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i] = tasks[i]()
				if opts.OnProgress != nil {
					mu.Lock()
					done++
					opts.OnProgress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// Each runs fn for every index 0..n-1 on the pool; the index-keyed
// variant of Run for tasks that write into caller-owned slots.
func Each(n int, opts Options, fn func(i int)) {
	tasks := make([]func() struct{}, n)
	for i := range tasks {
		i := i
		tasks[i] = func() struct{} {
			fn(i)
			return struct{}{}
		}
	}
	Run(tasks, opts)
}
