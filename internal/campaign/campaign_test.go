package campaign

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestResultsKeyedByIndex forces tasks to complete in exactly reverse
// order (task i blocks until task i+1 finishes) and checks the results
// still land in index order — the core determinism guarantee.
func TestResultsKeyedByIndex(t *testing.T) {
	const n = 8
	gates := make([]chan struct{}, n+1)
	for i := range gates {
		gates[i] = make(chan struct{})
	}
	close(gates[n])
	tasks := make([]func() int, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func() int {
			<-gates[i+1] // wait for the later-indexed task
			close(gates[i])
			return i * i
		}
	}
	// Workers must cover every task or the reverse chain deadlocks.
	results := Run(tasks, Options{Workers: n})
	for i, r := range results {
		if r != i*i {
			t.Fatalf("results[%d] = %d, want %d (completion order leaked in)", i, r, i*i)
		}
	}
}

// TestSerialPath covers Workers=1: plain loop, in-order progress.
func TestSerialPath(t *testing.T) {
	var order []int
	tasks := make([]func() int, 5)
	for i := range tasks {
		i := i
		tasks[i] = func() int {
			order = append(order, i)
			return i
		}
	}
	var progress []int
	results := Run(tasks, Options{Workers: 1, OnProgress: func(done, total int) {
		if total != 5 {
			t.Errorf("total = %d, want 5", total)
		}
		progress = append(progress, done)
	}})
	for i, r := range results {
		if r != i {
			t.Fatalf("results[%d] = %d", i, r)
		}
		if order[i] != i {
			t.Fatalf("serial path ran out of order: %v", order)
		}
		if progress[i] != i+1 {
			t.Fatalf("progress not 1..n: %v", progress)
		}
	}
}

// TestBoundedConcurrency verifies the pool never exceeds Workers.
func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	tasks := make([]func() struct{}, 64)
	for i := range tasks {
		tasks[i] = func() struct{} {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			// A few scheduler yields give overlapping workers a chance
			// to be observed without touching any clock.
			for k := 0; k < 100; k++ {
				runtime.Gosched()
			}
			cur.Add(-1)
			return struct{}{}
		}
	}
	Run(tasks, Options{Workers: workers})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, worker bound is %d", p, workers)
	}
}

// TestProgressMonotonic checks done is strictly increasing and
// complete under parallel execution.
func TestProgressMonotonic(t *testing.T) {
	const n = 50
	tasks := make([]func() int, n)
	for i := range tasks {
		i := i
		tasks[i] = func() int { return i }
	}
	var seen []int
	Run(tasks, Options{Workers: 8, OnProgress: func(done, total int) {
		seen = append(seen, done) // serialized by the pool's mutex
	}})
	if len(seen) != n {
		t.Fatalf("OnProgress called %d times, want %d", len(seen), n)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress sequence not 1..n: %v", seen)
		}
	}
}

// TestEach covers the index-keyed variant.
func TestEach(t *testing.T) {
	out := make([]int, 20)
	Each(len(out), Options{Workers: 4}, func(i int) { out[i] = i + 1 })
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestEmptyAndOversubscribed covers the n=0 edge and workers > tasks.
func TestEmptyAndOversubscribed(t *testing.T) {
	if got := Run([]func() int{}, Options{Workers: 4}); len(got) != 0 {
		t.Fatalf("empty run returned %v", got)
	}
	got := Run([]func() int{func() int { return 7 }}, Options{Workers: 16})
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("oversubscribed run returned %v", got)
	}
}
