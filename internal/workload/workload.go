// Package workload generates synthetic random workloads — beyond the
// fixed ESP mix — for robustness testing and capacity planning: a mix
// of rigid, evolving and malleable jobs with exponential interarrival
// and runtime distributions, in the spirit of Feitelson's workload
// models. Generation is fully deterministic per seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/job"
	"repro/internal/rms"
	"repro/internal/sim"
)

// Spec parameterizes a random workload.
type Spec struct {
	Jobs int
	Seed int64
	// Rand, when non-nil, supplies the random stream instead of the
	// default rand.New(rand.NewSource(Seed)). The default keeps the
	// seed-to-workload mapping bit-identical across runs.
	Rand *rand.Rand
	// TotalCores is the target system size; per-job sizes are drawn
	// from a log-uniform distribution in [1, MaxJobFrac·TotalCores].
	TotalCores int
	// MaxJobFrac caps a single job's size as a fraction of the system.
	MaxJobFrac float64
	// EvolvingFrac / MalleableFrac select job classes; the remainder
	// is rigid.
	EvolvingFrac  float64
	MalleableFrac float64
	// MeanRuntime and MeanInterarrival drive exponential draws.
	MeanRuntime      sim.Duration
	MeanInterarrival sim.Duration
	// WalltimeFactor scales requested walltime over true runtime.
	WalltimeFactor float64
	// Users is the number of distinct submitting users.
	Users int
}

// DefaultSpec returns a moderate mixed workload.
func DefaultSpec() Spec {
	return Spec{
		Jobs:             100,
		Seed:             1,
		TotalCores:       120,
		MaxJobFrac:       0.5,
		EvolvingFrac:     0.3,
		MalleableFrac:    0.1,
		MeanRuntime:      10 * sim.Minute,
		MeanInterarrival: 30 * sim.Second,
		WalltimeFactor:   1.5,
		Users:            8,
	}
}

// Item is one generated job.
type Item struct {
	Job      *job.Job
	App      rms.App
	SubmitAt sim.Time
}

// Generate draws the workload.
func Generate(spec Spec) []Item {
	if spec.Jobs <= 0 {
		return nil
	}
	if spec.TotalCores <= 0 {
		spec.TotalCores = 120
	}
	if spec.MaxJobFrac <= 0 || spec.MaxJobFrac > 1 {
		spec.MaxJobFrac = 0.5
	}
	if spec.MeanRuntime <= 0 {
		spec.MeanRuntime = 10 * sim.Minute
	}
	if spec.MeanInterarrival <= 0 {
		spec.MeanInterarrival = 30 * sim.Second
	}
	if spec.WalltimeFactor < 1 {
		spec.WalltimeFactor = 1.5
	}
	if spec.Users <= 0 {
		spec.Users = 8
	}
	rng := spec.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(spec.Seed))
	}
	maxCores := int(spec.MaxJobFrac * float64(spec.TotalCores))
	if maxCores < 1 {
		maxCores = 1
	}

	var items []Item
	var at sim.Time
	for i := 0; i < spec.Jobs; i++ {
		if i > 0 {
			at += expDuration(rng, spec.MeanInterarrival)
		}
		cores := logUniformInt(rng, 1, maxCores)
		runtime := expDuration(rng, spec.MeanRuntime)
		if runtime < sim.Second {
			runtime = sim.Second
		}
		wall := sim.Duration(spec.WalltimeFactor * float64(runtime))
		user := fmt.Sprintf("wuser%02d", rng.Intn(spec.Users))
		j := &job.Job{
			Name:     fmt.Sprintf("w.%d", i+1),
			Cred:     job.Credentials{User: user, Group: "wgrp" + user[len(user)-1:]},
			Cores:    cores,
			Walltime: wall,
		}
		var app rms.App
		switch draw := rng.Float64(); {
		case draw < spec.EvolvingFrac:
			j.Class = job.Evolving
			det := sim.Duration(float64(runtime) * (0.5 + 0.4*rng.Float64()))
			extra := 1 + rng.Intn(maxCores/2+1)
			app = &rms.EvolvingApp{
				SET: runtime, DET: det, ExtraCores: extra,
				AttemptFracs: rms.DefaultAttemptFracs(),
			}
		case draw < spec.EvolvingFrac+spec.MalleableFrac:
			j.Class = job.Malleable
			j.MinCores = 1 + cores/2
			j.MaxCores = cores * 2
			if j.MaxCores > spec.TotalCores {
				j.MaxCores = spec.TotalCores
			}
			app = &rms.MalleableWorkApp{Work: float64(cores) * sim.SecondsOf(runtime)}
		default:
			app = &rms.FixedApp{Runtime: runtime}
		}
		items = append(items, Item{Job: j, App: app, SubmitAt: at})
	}
	return items
}

// SubmitAll schedules every item on the server.
func SubmitAll(srv *rms.Server, items []Item) {
	for _, it := range items {
		it := it
		if it.SubmitAt == 0 {
			srv.Submit(it.Job, it.App)
		} else {
			srv.SubmitAt(it.SubmitAt, it.Job, it.App)
		}
	}
}

// expDuration draws an exponentially distributed duration.
func expDuration(rng *rand.Rand, mean sim.Duration) sim.Duration {
	return sim.Duration(rng.ExpFloat64() * float64(mean))
}

// logUniformInt draws log-uniformly in [lo, hi] — small jobs common,
// big ones rare, as production workloads show.
func logUniformInt(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	v := math.Exp(rng.Float64() * math.Log(float64(hi-lo+1)))
	n := lo + int(v) - 1
	if n > hi {
		n = hi
	}
	if n < lo {
		n = lo
	}
	return n
}
