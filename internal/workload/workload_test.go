package workload

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/rms"
	"repro/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultSpec())
	b := Generate(DefaultSpec())
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Job.Name != b[i].Job.Name || a[i].Job.Cores != b[i].Job.Cores ||
			a[i].SubmitAt != b[i].SubmitAt || a[i].Job.Class != b[i].Job.Class {
			t.Fatalf("item %d differs", i)
		}
	}
}

// TestGenerateInjectedRand pins the bit-compatibility contract of
// Spec.Rand: injecting rand.New(rand.NewSource(Seed)) must yield
// exactly the stream the Seed field produces on its own.
func TestGenerateInjectedRand(t *testing.T) {
	def := Generate(DefaultSpec())
	spec := DefaultSpec()
	spec.Rand = rand.New(rand.NewSource(spec.Seed))
	inj := Generate(spec)
	if len(def) != len(inj) {
		t.Fatalf("lengths differ: %d vs %d", len(def), len(inj))
	}
	for i := range def {
		if def[i].Job.Name != inj[i].Job.Name || def[i].Job.Cores != inj[i].Job.Cores ||
			def[i].SubmitAt != inj[i].SubmitAt || def[i].Job.Class != inj[i].Job.Class ||
			def[i].Job.Walltime != inj[i].Job.Walltime {
			t.Fatalf("item %d differs with injected same-seed Rand", i)
		}
	}
}

func TestGenerateClassMix(t *testing.T) {
	spec := DefaultSpec()
	spec.Jobs = 1000
	items := Generate(spec)
	counts := map[job.Class]int{}
	for _, it := range items {
		counts[it.Job.Class]++
		if it.Job.Cores < 1 || it.Job.Cores > 60 {
			t.Fatalf("job size %d out of range", it.Job.Cores)
		}
		if it.Job.Walltime <= 0 {
			t.Fatal("non-positive walltime")
		}
	}
	// 30% evolving, 10% malleable, with generous tolerance.
	if counts[job.Evolving] < 230 || counts[job.Evolving] > 370 {
		t.Errorf("evolving = %d of 1000", counts[job.Evolving])
	}
	if counts[job.Malleable] < 50 || counts[job.Malleable] > 160 {
		t.Errorf("malleable = %d of 1000", counts[job.Malleable])
	}
	if counts[job.Rigid] == 0 {
		t.Error("no rigid jobs")
	}
}

func TestGenerateDegenerate(t *testing.T) {
	if Generate(Spec{}) != nil {
		t.Error("zero jobs → nil")
	}
	items := Generate(Spec{Jobs: 5}) // all defaults filled in
	if len(items) != 5 {
		t.Fatal("defaults should apply")
	}
}

// TestWholeSystemProperty is the randomized end-to-end invariant test:
// for several seeds, run a full mixed workload (rigid + evolving +
// malleable, fairness enabled, malleable resizing on) and assert the
// global invariants the batch system must uphold.
func TestWholeSystemProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		spec := DefaultSpec()
		spec.Seed = seed
		spec.Jobs = 60
		run := func() (*rms.Server, *metrics.Recorder, *cluster.Cluster) {
			eng := sim.NewEngine()
			cl := cluster.New(15, 8)
			sc := config.Default()
			f := fairness.NewConfig(fairness.TargetDelay)
			f.Set(fairness.KindUser, "wuser00", fairness.Limits{TargetDelayTime: 300 * sim.Second})
			f.Set(fairness.KindUser, "wuser01", fairness.Limits{PermSet: true, Perm: false})
			sc.Fairness = f
			sched := core.New(core.Options{Config: sc, Malleable: true}, 0)
			rec := metrics.NewRecorder(cl.TotalCores())
			srv := rms.NewServer(eng, cl, sched, rec)
			SubmitAll(srv, Generate(spec))
			srv.Run(5_000_000)
			return srv, rec, cl
		}
		srv, rec, cl := run()

		// Every job terminates (completed, or cancelled at walltime).
		if srv.Completed()+srv.Cancelled() != spec.Jobs {
			t.Fatalf("seed %d: %d completed + %d cancelled of %d jobs",
				seed, srv.Completed(), srv.Cancelled(), spec.Jobs)
		}
		// All resources returned.
		if cl.IdleCores() != cl.TotalCores() {
			t.Fatalf("seed %d: %d cores leaked", seed, cl.TotalCores()-cl.IdleCores())
		}
		if err := cl.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Utilization is a valid fraction; makespan positive.
		if u := rec.Utilization(); u < 0 || u > 1.000001 {
			t.Fatalf("seed %d: utilization %v", seed, u)
		}
		if rec.Makespan() <= 0 {
			t.Fatalf("seed %d: empty makespan", seed)
		}
		// No job starts before submission or ends before start.
		for _, r := range rec.Jobs() {
			if r.Start < r.Submit || r.End < r.Start {
				t.Fatalf("seed %d: job %v has an impossible timeline %v/%v/%v",
					seed, r.ID, r.Submit, r.Start, r.End)
			}
		}
		// Determinism: a second identical run agrees exactly.
		_, rec2, _ := run()
		if rec.Summarize("a") != rec2.Summarize("a") {
			t.Fatalf("seed %d: non-deterministic run", seed)
		}
	}
}

// TestWorkloadUnderFailures injects node failures mid-run and checks
// the system stays consistent (jobs are cancelled or absorbed, no
// resource leaks, simulation terminates).
func TestWorkloadUnderFailures(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		spec := DefaultSpec()
		spec.Seed = seed
		spec.Jobs = 40
		eng := sim.NewEngine()
		cl := cluster.New(15, 8)
		sched := core.New(core.Options{Config: config.Default(), Malleable: true}, 0)
		rec := metrics.NewRecorder(cl.TotalCores())
		srv := rms.NewServer(eng, cl, sched, rec)
		srv.FailurePolicy = rms.FailRequeue
		SubmitAll(srv, Generate(spec))
		// Fail two nodes mid-run, repair one later.
		eng.At(5*sim.Minute, "fail3", func(sim.Time) { srv.FailNode(3) })
		eng.At(7*sim.Minute, "fail9", func(sim.Time) { srv.FailNode(9) })
		eng.At(20*sim.Minute, "repair3", func(sim.Time) { srv.RepairNode(3) })
		srv.Run(5_000_000)

		if srv.Completed()+srv.Cancelled() != spec.Jobs {
			t.Fatalf("seed %d: %d+%d of %d jobs terminated",
				seed, srv.Completed(), srv.Cancelled(), spec.Jobs)
		}
		if err := cl.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cl.UsedCores() != 0 {
			t.Fatalf("seed %d: %d cores leaked", seed, cl.UsedCores())
		}
	}
}
