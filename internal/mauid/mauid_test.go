package mauid

import (
	"context"
	"fmt"
	"repro/internal/testutil/leak"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/mom"
	"repro/internal/proto"
	"repro/internal/serverd"
	"repro/internal/tm"
)

// externalCluster starts a server WITHOUT an embedded scheduler plus n
// moms, and a mauid daemon driving it — the paper's two-daemon
// headnode architecture.
func externalCluster(t *testing.T, n, cores int) (*serverd.Server, *Daemon) {
	t.Helper()
	srv := serverd.New(serverd.Options{Sched: nil})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	for i := 0; i < n; i++ {
		m := mom.New(fmt.Sprintf("xnode%d", i), cores)
		if err := m.Start("127.0.0.1:0", srv.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
	}
	d := New(srv.Addr(), core.New(core.Options{}, 0), 15*time.Millisecond)
	d.Start()
	t.Cleanup(d.Close)
	return srv, d
}

func waitState(t *testing.T, srv *serverd.Server, id int, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, j := range srv.QStat().Jobs {
			if j.ID == id && j.State == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %d never reached %s", id, want)
}

func TestExternalSchedulerRunsJobs(t *testing.T) {
	leak.Check(t)
	srv, _ := externalCluster(t, 2, 8)
	id, err := srv.QSub(proto.JobSpec{
		Name: "ext", User: "u", Cores: 12, WallSecs: 60, Script: "sleep:40ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, id, "completed", 5*time.Second)
}

func TestExternalSchedulerQueueDrains(t *testing.T) {
	leak.Check(t)
	srv, _ := externalCluster(t, 1, 8)
	var ids []int
	for i := 0; i < 4; i++ {
		id, err := srv.QSub(proto.JobSpec{
			Name: fmt.Sprintf("q%d", i), User: "u", Cores: 8, WallSecs: 60, Script: "sleep:20ms",
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		waitState(t, srv, id, "completed", 10*time.Second)
	}
}

func TestExternalSchedulerDynGet(t *testing.T) {
	leak.Check(t)
	srv, d := externalCluster(t, 2, 8)
	granted := make(chan []proto.HostSlice, 1)
	mom.RegisterGoApp("ext-grower", func(ctx context.Context, tmc *tm.Context) error {
		hosts, err := tmc.DynGet(4)
		if err != nil {
			return err
		}
		granted <- hosts
		time.Sleep(20 * time.Millisecond)
		return nil
	})
	id, err := srv.QSub(proto.JobSpec{
		Name: "F.ext", User: "user06", Cores: 8, WallSecs: 120,
		Script: "go:ext-grower", Evolving: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case hosts := <-granted:
		total := 0
		for _, h := range hosts {
			total += h.Cores
		}
		if total != 4 {
			t.Errorf("granted %d cores", total)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("external dynget timed out")
	}
	waitState(t, srv, id, "completed", 5*time.Second)
	if d.Scheduler().Iterations() == 0 {
		t.Error("daemon never iterated")
	}
}

func TestMirrorFromSnapshot(t *testing.T) {
	leak.Check(t)
	st := &proto.SchedState{
		NowMS: 1000,
		Nodes: []proto.NodeStatus{
			{Name: "n0", Cores: 8, Used: 4, State: "up"},
			{Name: "n1", Cores: 8, Used: 0, State: "up"},
			{Name: "n2", Cores: 8, Used: 0, State: "down"},
		},
		Queued: []proto.SchedJob{{ID: 1, User: "u", State: "queued", Cores: 8, WallSecs: 60}},
		Active: []proto.SchedJob{{ID: 2, User: "v", State: "running", Cores: 4, WallSecs: 120, Evolving: true}},
		Dyn:    []proto.SchedDynReq{{JobID: 2, Cores: 2, Seq: 0}},
	}
	m, err := newMirror(st)
	if err != nil {
		t.Fatal(err)
	}
	if m.cl.TotalCores() != 16 { // down node excluded
		t.Errorf("mirror capacity = %d", m.cl.TotalCores())
	}
	if m.cl.IdleCores() != 12 {
		t.Errorf("mirror idle = %d", m.cl.IdleCores())
	}
	if len(m.QueuedJobs()) != 1 || len(m.ActiveJobs()) != 1 || len(m.DynRequests()) != 1 {
		t.Error("mirror workload counts")
	}
	if m.DynRequests()[0].Job.ID != 2 {
		t.Error("dyn request not linked to active job")
	}
	// Decisions are recorded as actions.
	if _, err := m.StartJob(m.QueuedJobs()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.GrantDyn(m.DynRequests()[0]); err != nil {
		t.Fatal(err)
	}
	if len(m.actions) != 2 || m.actions[0].Kind != "start" || m.actions[1].Kind != "grant" {
		t.Errorf("actions = %+v", m.actions)
	}
	if err := m.Preempt(&job.Job{}); err == nil {
		t.Error("mirror preemption must be unsupported")
	}
}

func TestMirrorOverfullSnapshot(t *testing.T) {
	leak.Check(t)
	st := &proto.SchedState{
		Nodes: []proto.NodeStatus{{Name: "n0", Cores: 8, Used: 9, State: "up"}},
	}
	if _, err := newMirror(st); err == nil {
		t.Error("impossible usage must fail")
	}
}

func TestParseState(t *testing.T) {
	leak.Check(t)
	for _, s := range []job.State{job.Queued, job.Running, job.DynQueued, job.Completed} {
		got, err := parseState(s.String())
		if err != nil || got != s {
			t.Errorf("parseState(%s) = %v, %v", s, got, err)
		}
	}
	if _, err := parseState("weird"); err == nil {
		t.Error("unknown state must error")
	}
}

// TestMirrorEpochs: the mirror is an honest core.ChangeTracker —
// epochs seed from the pulled snapshot serial, queue-membership
// changes advance both epochs, dyn-only changes advance the state
// epoch alone.
func TestMirrorEpochs(t *testing.T) {
	leak.Check(t)
	var _ core.ChangeTracker = (*mirror)(nil)
	st := &proto.SchedState{
		NowMS:  1000,
		Serial: 7,
		Nodes:  []proto.NodeStatus{{Name: "n0", Cores: 8, State: "up"}},
		Queued: []proto.SchedJob{{ID: 1, User: "u", State: "queued", Cores: 4, WallSecs: 60}},
		Active: []proto.SchedJob{{ID: 2, User: "v", State: "running", Cores: 2, WallSecs: 120, Evolving: true}},
		Dyn:    []proto.SchedDynReq{{JobID: 2, Cores: 1, Seq: 0}},
	}
	m, err := newMirror(st)
	if err != nil {
		t.Fatal(err)
	}
	if m.StateEpoch() != 7 || m.QueueEpoch() != 7 {
		t.Fatalf("epochs = %d/%d, want seeded from serial 7", m.StateEpoch(), m.QueueEpoch())
	}
	if _, err := m.StartJob(m.QueuedJobs()[0]); err != nil {
		t.Fatal(err)
	}
	if m.StateEpoch() != 8 || m.QueueEpoch() != 8 {
		t.Errorf("after start: epochs = %d/%d, want 8/8", m.StateEpoch(), m.QueueEpoch())
	}
	if _, err := m.GrantDyn(m.DynRequests()[0]); err != nil {
		t.Fatal(err)
	}
	if m.StateEpoch() != 9 || m.QueueEpoch() != 8 {
		t.Errorf("after grant: epochs = %d/%d, want 9/8 (dyn is state-class)", m.StateEpoch(), m.QueueEpoch())
	}
}
