package mauid

import (
	"fmt"
	"repro/internal/testutil/leak"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mom"
	"repro/internal/proto"
	"repro/internal/proto/chaos"
	"repro/internal/serverd"
)

// TestChaosSchedulerSurvivesServerOutage: the mauid talks to the
// server through a fault-injecting proxy. A burst of refused
// connections makes several iterations fail; the daemon must back off
// and resume scheduling once the path heals, without being restarted.
func TestChaosSchedulerSurvivesServerOutage(t *testing.T) {
	leak.Check(t)
	srv, _ := externalClusterNoSched(t, 1, 8)
	p := chaos.New(srv.Addr(), chaos.Options{})
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	d := New(p.Addr(), core.New(core.Options{}, 0), 15*time.Millisecond)
	d.Start()
	t.Cleanup(d.Close)

	id, err := srv.QSub(proto.JobSpec{
		Name: "pre", User: "u", Cores: 8, WallSecs: 60, Script: "sleep:20ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, id, "completed", 10*time.Second)

	// Outage: the next several scheduler connections die at accept.
	p.RefuseNext(6)
	id2, err := srv.QSub(proto.JobSpec{
		Name: "post", User: "u", Cores: 8, WallSecs: 60, Script: "sleep:20ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, id2, "completed", 15*time.Second)
	if s := p.Stats(); s.Refused != 6 {
		t.Errorf("stats = %+v, want Refused=6", s)
	}
}

// TestChaosSchedulerRestart: killing the mauid and starting a fresh
// one must resume scheduling — the daemon is stateless by design, so
// a queued job just waits for the replacement.
func TestChaosSchedulerRestart(t *testing.T) {
	leak.Check(t)
	srv, d := externalCluster(t, 1, 8)
	id, err := srv.QSub(proto.JobSpec{
		Name: "first", User: "u", Cores: 8, WallSecs: 60, Script: "sleep:20ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, id, "completed", 10*time.Second)

	d.Close()
	id2, err := srv.QSub(proto.JobSpec{
		Name: "stranded", User: "u", Cores: 8, WallSecs: 60, Script: "sleep:20ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	// No scheduler: the job must still be queued after a few would-be
	// iterations.
	time.Sleep(100 * time.Millisecond)
	for _, j := range srv.QStat().Jobs {
		if j.ID == id2 && j.State != "queued" {
			t.Fatalf("job scheduled with no scheduler running (state %s)", j.State)
		}
	}

	d2 := New(srv.Addr(), core.New(core.Options{}, 0), 15*time.Millisecond)
	d2.Start()
	t.Cleanup(d2.Close)
	waitState(t, srv, id2, "completed", 10*time.Second)
}

// externalClusterNoSched is externalCluster without the mauid, for
// tests that wire their own daemon (e.g. through a chaos proxy).
func externalClusterNoSched(t *testing.T, n, cores int) (*serverd.Server, []string) {
	t.Helper()
	srv := serverd.New(serverd.Options{Sched: nil})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	names := momSet(t, srv, n, cores)
	return srv, names
}

// momSet starts n moms against srv and waits for registration.
func momSet(t *testing.T, srv *serverd.Server, n, cores int) []string {
	t.Helper()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		m := mom.New(fmt.Sprintf("cnode%d", i), cores)
		if err := m.Start("127.0.0.1:0", srv.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		names[i] = m.Name()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(srv.QStat().Nodes) >= n {
			return names
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("moms never registered")
	return nil
}
