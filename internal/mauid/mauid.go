// Package mauid implements the scheduler daemon (the Maui analog) as a
// separate process from the server, matching the paper's architecture
// (Fig. 2: pbs_server and the Maui scheduler are distinct daemons on
// the headnode). Each iteration the daemon pulls a workload/resource
// snapshot from the server (sched.pull), plans against a local mirror
// with the exact same core.Scheduler the simulator uses, and commits
// its decisions (sched.commit). The server re-validates every action,
// so a commit computed on a stale snapshot degrades gracefully.
package mauid

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/backoff"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Daemon is the external scheduler.
type Daemon struct {
	srvAddr  string
	sched    *core.Scheduler
	interval time.Duration
	closed   chan struct{} //schedlint:chan-owner Close
	done     chan struct{} //schedlint:chan-owner Start (the iteration goroutine defers the close on exit)

	// Proto selects the wire codec for server connections (see
	// proto.Mode); the zero value negotiates automatically. Set before
	// Start.
	Proto proto.Mode
}

// New creates a daemon that schedules the server at srvAddr every
// interval (plus immediately after any iteration that made progress).
func New(srvAddr string, sched *core.Scheduler, interval time.Duration) *Daemon {
	if interval <= 0 {
		interval = time.Second
	}
	return &Daemon{
		srvAddr:  srvAddr,
		sched:    sched,
		interval: interval,
		closed:   make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Scheduler returns the planning core (for fairness inspection).
func (d *Daemon) Scheduler() *core.Scheduler { return d.sched }

// Start begins the iteration loop. Iterations that fail (an
// unreachable or restarting server) back off with capped exponential
// delay and deterministic jitter instead of hammering the headnode at
// the full polling rate; the first success resumes the normal cadence.
func (d *Daemon) Start() {
	go func() {
		defer close(d.done)
		pol := backoff.Policy{Max: d.interval * 8}
		rng := backoff.NewRand("mauid")
		failures := 0
		t := time.NewTimer(d.interval) //lint:wallclock the external scheduler polls the server in real time
		defer t.Stop()
		for {
			select {
			case <-d.closed:
				return
			case <-t.C:
			}
			applied, _, err := d.RunOnce()
			if err != nil {
				t.Reset(pol.Delay(failures, rng))
				failures++
				continue
			}
			failures = 0
			// Progress usually enables more progress (freed siblings,
			// unblocked reservations): iterate again immediately.
			for applied > 0 {
				applied, _, err = d.RunOnce()
				if err != nil {
					break
				}
			}
			t.Reset(d.interval)
		}
	}()
}

// Close stops the loop.
func (d *Daemon) Close() {
	select {
	case <-d.closed:
	default:
		close(d.closed)
	}
	<-d.done
}

// RunOnce performs a single pull→plan→commit cycle and returns how
// many actions the server applied and skipped.
func (d *Daemon) RunOnce() (applied, skipped int, err error) {
	state, err := d.pull()
	if err != nil {
		return 0, 0, err
	}
	mirror, err := newMirror(state)
	if err != nil {
		return 0, 0, err
	}
	d.sched.Recycle(d.sched.Iterate(sim.Time(state.NowMS), mirror))
	if len(mirror.actions) == 0 {
		return 0, 0, nil
	}
	resp, err := d.commit(proto.SchedCommit{Serial: state.Serial, Actions: mirror.actions})
	if err != nil {
		return 0, 0, err
	}
	return resp.Applied, resp.Skipped, nil
}

func (d *Daemon) pull() (*proto.SchedState, error) {
	c, err := proto.DialMode(d.srvAddr, d.Proto)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	env, err := c.Request(proto.TSchedPull, nil)
	if err != nil {
		return nil, err
	}
	if env.Type != proto.TSchedState {
		return nil, fmt.Errorf("mauid: unexpected reply %s", env.Type)
	}
	var st proto.SchedState
	if err := env.Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (d *Daemon) commit(c proto.SchedCommit) (*proto.SchedCommitResp, error) {
	conn, err := proto.DialMode(d.srvAddr, d.Proto)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	env, err := conn.Request(proto.TSchedCommit, c)
	if err != nil {
		return nil, err
	}
	var resp proto.SchedCommitResp
	if err := env.Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// mirror implements core.ResourceManager over a snapshot: decisions
// mutate only the local mirror and are recorded as commit actions. It
// also implements core.ChangeTracker — epochs are seeded from the
// pulled snapshot serial and advance with the mirror's own mutations —
// so the scheduler's epoch machinery sees an honest tracker. The skip
// and order caches stay naturally cold across cycles (every RunOnce
// builds a fresh mirror, and both caches key on RM identity), which is
// exactly right: a new pull is by definition a new world.
type mirror struct {
	cl      *cluster.Cluster
	queued  []*job.Job        //schedlint:epoch-guarded by bumpQueue
	active  []*job.Job        //schedlint:epoch-guarded by bump
	dyn     []*job.DynRequest //schedlint:epoch-guarded by bump
	serial  uint64
	qserial uint64
	actions []proto.SchedAction
}

// bump advances the state epoch.
func (m *mirror) bump() { m.serial++ }

// bumpQueue advances both epochs: a queue-membership change also
// invalidates state-level caches.
//
//schedlint:epoch-bump subsumes bump
func (m *mirror) bumpQueue() {
	m.serial++
	m.qserial++
}

// StateEpoch implements core.ChangeTracker.
func (m *mirror) StateEpoch() uint64 { return m.serial }

// QueueEpoch implements core.ChangeTracker.
func (m *mirror) QueueEpoch() uint64 { return m.qserial }

// mirrorFillID marks the synthetic allocations that reproduce the
// snapshot's per-node usage in the mirror cluster.
const mirrorFillID = job.ID(1 << 30)

func newMirror(st *proto.SchedState) (*mirror, error) {
	m := &mirror{cl: cluster.New(0, 0), serial: st.Serial, qserial: st.Serial}
	for i, n := range st.Nodes {
		node := m.cl.AddNode(n.Name, n.Cores)
		if n.State != "up" {
			m.cl.SetNodeState(node.ID, cluster.Down)
			continue
		}
		if n.Used > 0 {
			// Reproduce the usage with a synthetic allocation so the
			// planner sees correct idle counts per node.
			if m.cl.AllocateNodes(mirrorFillID+job.ID(i), 1, n.Used) == nil {
				return nil, fmt.Errorf("mauid: cannot mirror %d used cores on %s", n.Used, n.Name)
			}
		}
	}
	jobOf := func(sj proto.SchedJob) *job.Job {
		class := job.Rigid
		if sj.Evolving {
			class = job.Evolving
		}
		st, _ := parseState(sj.State)
		return &job.Job{
			ID:    job.ID(sj.ID),
			Name:  sj.Name,
			Cred:  job.Credentials{User: sj.User, Group: sj.Group},
			Class: class, Cores: sj.Cores, DynCores: sj.DynCores,
			Walltime:       sim.Duration(sj.WallSecs) * sim.Second,
			SubmitTime:     sim.Time(sj.SubmitMS),
			StartTime:      sim.Time(sj.StartMS),
			State:          st,
			SystemPriority: sj.SysPrio,
			Backfilled:     sj.Backfilled,
		}
	}
	byID := map[int]*job.Job{}
	for _, sj := range st.Queued {
		j := jobOf(sj)
		m.queued = append(m.queued, j)
		byID[sj.ID] = j
	}
	for _, sj := range st.Active {
		j := jobOf(sj)
		m.active = append(m.active, j)
		byID[sj.ID] = j
	}
	dyn := append([]proto.SchedDynReq(nil), st.Dyn...)
	sort.Slice(dyn, func(i, k int) bool { return dyn[i].Seq < dyn[k].Seq })
	for _, dr := range dyn {
		j := byID[dr.JobID]
		if j == nil {
			continue
		}
		m.dyn = append(m.dyn, &job.DynRequest{
			Job: j, Cores: dr.Cores, Nodes: dr.Nodes, PPN: dr.PPN, Seq: dr.Seq,
			Deadline: sim.Time(dr.DeadlineMS),
		})
	}
	return m, nil
}

func parseState(s string) (job.State, error) {
	for _, st := range []job.State{job.Queued, job.Running, job.DynQueued, job.Completed, job.Cancelled, job.Preempted} {
		if st.String() == s {
			return st, nil
		}
	}
	return job.Queued, fmt.Errorf("mauid: unknown state %q", s)
}

func (m *mirror) Cluster() *cluster.Cluster      { return m.cl }
func (m *mirror) QueuedJobs() []*job.Job         { return append([]*job.Job(nil), m.queued...) }
func (m *mirror) ActiveJobs() []*job.Job         { return append([]*job.Job(nil), m.active...) }
func (m *mirror) DynRequests() []*job.DynRequest { return append([]*job.DynRequest(nil), m.dyn...) }

func (m *mirror) StartJob(j *job.Job) (cluster.Alloc, error) {
	alloc := m.cl.Allocate(j.ID, j.Cores)
	if alloc == nil {
		return nil, fmt.Errorf("mauid: mirror cannot place %s", j.ID)
	}
	for i, q := range m.queued {
		if q.ID == j.ID {
			m.queued = append(m.queued[:i], m.queued[i+1:]...)
			break
		}
	}
	j.State = job.Running
	m.active = append(m.active, j)
	m.bumpQueue()
	m.actions = append(m.actions, proto.SchedAction{Kind: "start", JobID: int(j.ID)})
	return alloc, nil
}

func (m *mirror) GrantDyn(r *job.DynRequest) (cluster.Alloc, error) {
	var alloc cluster.Alloc
	if r.Nodes > 0 {
		alloc = m.cl.AllocateNodes(r.Job.ID, r.Nodes, r.PPN)
	} else {
		alloc = m.cl.Allocate(r.Job.ID, r.Cores)
	}
	if alloc == nil {
		return nil, fmt.Errorf("mauid: mirror cannot place grant for %s", r.Job.ID)
	}
	r.Job.DynCores += r.TotalCores()
	r.Job.State = job.Running
	m.removeDyn(r)
	m.bump()
	m.actions = append(m.actions, proto.SchedAction{Kind: "grant", JobID: int(r.Job.ID)})
	return alloc, nil
}

func (m *mirror) RejectDyn(r *job.DynRequest, reason string) {
	r.Job.State = job.Running
	m.removeDyn(r)
	m.bump()
	m.actions = append(m.actions, proto.SchedAction{Kind: "reject", JobID: int(r.Job.ID), Reason: reason})
}

func (m *mirror) removeDyn(r *job.DynRequest) {
	for i, d := range m.dyn {
		if d == r {
			m.dyn = append(m.dyn[:i], m.dyn[i+1:]...)
			return
		}
	}
}

// Preempt is not available through the remote protocol; sites wanting
// preemption for dynamic requests run the embedded scheduler.
func (m *mirror) Preempt(j *job.Job) error {
	return fmt.Errorf("mauid: preemption not supported over the sched protocol")
}
