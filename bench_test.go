// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation (§IV) and the ablations DESIGN.md
// calls out. Each benchmark reports the headline quantities as custom
// metrics so `go test -bench=. -benchmem` doubles as the experiment
// driver; `cmd/esprun` prints the same artifacts in full.
package main

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/esp"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/quadflow"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkTable1Workload generates the dynamic ESP job mix of
// Table I (230 jobs, 69 evolving) with its submission schedule.
func BenchmarkTable1Workload(b *testing.B) {
	var total, evolving int
	for i := 0; i < b.N; i++ {
		w := esp.Generate(esp.DefaultOpts())
		total, evolving, _ = w.Counts()
	}
	b.ReportMetric(float64(total), "jobs")
	b.ReportMetric(float64(evolving), "evolving")
}

// benchESP runs one ESP configuration per iteration and reports the
// Table II quantities for it.
func benchESP(b *testing.B, cfg experiments.ESPConfig) {
	var last *experiments.ESPResult
	for i := 0; i < b.N; i++ {
		last = experiments.RunESP(cfg, esp.DefaultOpts())
	}
	b.ReportMetric(last.Summary.MakespanMinutes, "makespan-min")
	b.ReportMetric(float64(last.Summary.SatisfiedDynJobs), "satisfied")
	b.ReportMetric(last.Summary.UtilizationPct, "util-%")
	b.ReportMetric(last.Summary.ThroughputJPM, "jobs/min")
}

// BenchmarkTable2Configs regenerates Table II: the full dynamic ESP
// workload under each of the paper's four configurations.
func BenchmarkTable2Configs(b *testing.B) {
	for _, cfg := range experiments.StandardConfigs() {
		b.Run(cfg.Name, func(b *testing.B) { benchESP(b, cfg) })
	}
}

// BenchmarkFig1Scenario times one extended scheduler iteration on the
// paper's motivating example (Fig. 1): a dynamic request whose grant
// would delay a queued job by four hours.
func BenchmarkFig1Scenario(b *testing.B) {
	var delay sim.Duration
	for i := 0; i < b.N; i++ {
		cl := cluster.New(6, 1)
		a := &job.Job{ID: 1, Cred: job.Credentials{User: "ua"}, Class: job.Evolving, Cores: 2, Walltime: 8 * sim.Hour}
		bj := &job.Job{ID: 2, Cred: job.Credentials{User: "ub"}, Cores: 2, Walltime: 4 * sim.Hour}
		cj := &job.Job{ID: 3, Cred: job.Credentials{User: "uc"}, Cores: 4, Walltime: 4 * sim.Hour, SubmitTime: sim.Hour, State: job.Queued}
		rm := newBenchRM(cl)
		rm.run(a)
		rm.run(bj)
		rm.queued = append(rm.queued, cj)
		rm.dyn = append(rm.dyn, &job.DynRequest{Job: a, Cores: 2, IssuedAt: sim.Hour})
		a.State = job.DynQueued
		s := core.New(core.Options{}, 0)
		res := s.Iterate(sim.Hour, rm)
		delay = res.DynDecisions[0].Delays[0].Delay
	}
	b.ReportMetric(sim.SecondsOf(delay)/3600, "delay-hours")
}

// BenchmarkFig7Quadflow regenerates the Quadflow execution-time
// comparison: static 16, static 32 and dynamic 16→32 for both cases.
func BenchmarkFig7Quadflow(b *testing.B) {
	for _, c := range quadflow.Cases() {
		b.Run(c.Name, func(b *testing.B) {
			var runs [3]quadflow.RunResult
			for i := 0; i < b.N; i++ {
				runs = quadflow.Fig7(c, 16, 500*sim.Millisecond)
			}
			b.ReportMetric(sim.SecondsOf(runs[0].Total)/3600, "static16-h")
			b.ReportMetric(sim.SecondsOf(runs[1].Total)/3600, "static32-h")
			b.ReportMetric(sim.SecondsOf(runs[2].Total)/3600, "dynamic-h")
			b.ReportMetric(quadflow.Savings(runs[0], runs[2])*100, "saving-%")
		})
	}
}

// waitSeriesBench runs the configurations a waiting-time figure needs
// and reports how many jobs the dynamic run delays vs the static one.
func waitSeriesBench(b *testing.B, idx ...int) {
	cfgs := experiments.StandardConfigs()
	var results []*experiments.ESPResult
	for i := 0; i < b.N; i++ {
		results = results[:0]
		for _, k := range idx {
			results = append(results, experiments.RunESP(cfgs[k], esp.DefaultOpts()))
		}
	}
	static := results[0].Recorder.WaitSeries()
	last := results[len(results)-1].Recorder.WaitSeries()
	worse, better := 0, 0
	for i := range static {
		switch {
		case last[i] > static[i]+1:
			worse++
		case last[i] < static[i]-1:
			better++
		}
	}
	b.ReportMetric(float64(worse), "jobs-delayed")
	b.ReportMetric(float64(better), "jobs-improved")
}

// BenchmarkFig8Waits regenerates Fig. 8 (Static vs Dyn-HP waits).
func BenchmarkFig8Waits(b *testing.B) { waitSeriesBench(b, 0, 1) }

// BenchmarkFig10Waits regenerates Fig. 10 (Static, Dyn-HP, Dyn-500).
func BenchmarkFig10Waits(b *testing.B) { waitSeriesBench(b, 0, 1, 2) }

// BenchmarkFig11Waits regenerates Fig. 11 (Static, Dyn-HP, Dyn-600).
func BenchmarkFig11Waits(b *testing.B) { waitSeriesBench(b, 0, 1, 3) }

// BenchmarkFig9TypeL regenerates Fig. 9: type-L waiting times across
// all four configurations.
func BenchmarkFig9TypeL(b *testing.B) {
	var results []*experiments.ESPResult
	for i := 0; i < b.N; i++ {
		results = experiments.RunStandard(esp.DefaultOpts())
	}
	static := results[0].Recorder.JobsOfType("L")
	for k, r := range results {
		var mean float64
		l := r.Recorder.JobsOfType("L")
		worse := 0
		for i := range l {
			mean += sim.SecondsOf(l[i].Wait())
			if l[i].Wait() > static[i].Wait() {
				worse++
			}
		}
		b.ReportMetric(mean/float64(len(l)), "Lmean-s-"+r.Config.Name)
		if k > 0 {
			b.ReportMetric(float64(worse), "Lworse-"+r.Config.Name)
		}
	}
}

// BenchmarkFig12Overhead measures the live-daemon tm_dynget latency
// for 1, 5 and 10 dynamically allocated nodes, idle and loaded — the
// real-socket reproduction of Fig. 12.
func BenchmarkFig12Overhead(b *testing.B) {
	opts := experiments.DefaultFig12Opts()
	opts.Samples = 1
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunFig12(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range points {
				if p.Nodes == 1 || p.Nodes == 5 || p.Nodes == 10 {
					b.ReportMetric(p.IdleMS, "idle-ms-"+itoa(p.Nodes)+"n")
					b.ReportMetric(p.LoadedMS, "loaded-ms-"+itoa(p.Nodes)+"n")
				}
			}
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

// --- ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationPreemption compares idle-only dynamic allocation
// with preemption-enabled allocation (backfilled jobs are requeued to
// serve dynamic requests).
func BenchmarkAblationPreemption(b *testing.B) {
	for _, pol := range []string{"NONE", "REQUEUE"} {
		pol := pol
		b.Run("preempt-"+pol, func(b *testing.B) {
			cfg := experiments.ESPConfig{
				Name: "Dyn-HP+" + pol, Dynamic: true,
				Mutate: func(sc *config.SchedConfig) { sc.PreemptPolicy = pol },
			}
			benchESP(b, cfg)
		})
	}
}

// BenchmarkAblationDelayDepth sweeps ReservationDelayDepth: how many
// StartLater jobs have their delays measured and charged (§III-C).
func BenchmarkAblationDelayDepth(b *testing.B) {
	for _, depth := range []int{1, 5, 20} {
		depth := depth
		b.Run("depth-"+itoa(depth), func(b *testing.B) {
			cfg := experiments.ESPConfig{
				Name: "Dyn-500", Dynamic: true,
				TargetDelay: 500 * sim.Second, Interval: sim.Hour,
				Mutate: func(sc *config.SchedConfig) { sc.ReservationDelayDepth = depth },
			}
			benchESP(b, cfg)
		})
	}
}

// BenchmarkAblationDecay sweeps DFSDecay: how much charged delay
// carries into the next accounting interval.
func BenchmarkAblationDecay(b *testing.B) {
	for _, decay := range []float64{0, 0.5, 1.0} {
		decay := decay
		name := "decay-0"
		if decay == 0.5 {
			name = "decay-05"
		} else if decay == 1.0 {
			name = "decay-1"
		}
		b.Run(name, func(b *testing.B) {
			cfg := experiments.ESPConfig{
				Name: "Dyn-500", Dynamic: true,
				TargetDelay: 500 * sim.Second, Interval: sim.Hour, Decay: decay,
			}
			benchESP(b, cfg)
		})
	}
}

// BenchmarkAblationDynOrder compares the paper's dynamic-before-
// backfill ordering against serving dynamic requests last.
func BenchmarkAblationDynOrder(b *testing.B) {
	for _, after := range []bool{false, true} {
		after := after
		name := "dyn-first"
		if after {
			name = "dyn-after-backfill"
		}
		b.Run(name, func(b *testing.B) {
			cfg := experiments.ESPConfig{
				Name: "Dyn-HP", Dynamic: true,
				CoreOpts: func(o *core.Options) { o.DynRequestsAfterBackfill = after },
			}
			benchESP(b, cfg)
		})
	}
}

// BenchmarkAblationResDepth sweeps ReservationDepth: conservative vs
// optimistic backfilling.
func BenchmarkAblationResDepth(b *testing.B) {
	for _, depth := range []int{1, 5, 20} {
		depth := depth
		b.Run("resdepth-"+itoa(depth), func(b *testing.B) {
			cfg := experiments.ESPConfig{
				Name: "Dyn-HP", Dynamic: true,
				Mutate: func(sc *config.SchedConfig) { sc.ReservationDepth = depth },
			}
			benchESP(b, cfg)
		})
	}
}

// BenchmarkAblationWalltimeFactor sweeps how much users over-request
// walltime; delay estimates are walltime-based, so looser walltimes
// make the fairness gate more conservative (§III-D).
func BenchmarkAblationWalltimeFactor(b *testing.B) {
	for _, f := range []float64{1.0, 1.5, 2.0} {
		f := f
		name := "wf-10"
		if f == 1.5 {
			name = "wf-15"
		} else if f == 2.0 {
			name = "wf-20"
		}
		b.Run(name, func(b *testing.B) {
			var last *experiments.ESPResult
			opts := esp.DefaultOpts()
			opts.WalltimeFactor = f
			for i := 0; i < b.N; i++ {
				last = experiments.RunESP(experiments.StandardConfigs()[2], opts)
			}
			b.ReportMetric(float64(last.Summary.SatisfiedDynJobs), "satisfied")
			b.ReportMetric(last.Summary.MakespanMinutes, "makespan-min")
		})
	}
}

// BenchmarkAblationSeeds reports how the Table II ordering depends on
// the (unpublished) ESP submission order.
func BenchmarkAblationSeeds(b *testing.B) {
	ordered := 0
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < b.N; i++ {
		ordered = 0
		for _, seed := range seeds {
			opts := esp.DefaultOpts()
			opts.Seed = seed
			rs := experiments.RunStandard(opts)
			s, hp, d5, d6 := rs[0].Summary, rs[1].Summary, rs[2].Summary, rs[3].Summary
			if s.MakespanMinutes > hp.MakespanMinutes &&
				hp.SatisfiedDynJobs > d5.SatisfiedDynJobs &&
				d6.SatisfiedDynJobs >= d5.SatisfiedDynJobs {
				ordered++
			}
		}
	}
	b.ReportMetric(float64(ordered), "paper-ordered-seeds")
	b.ReportMetric(float64(len(seeds)), "seeds")
}

// BenchmarkSchedulerIteration microbenchmarks one extended Maui
// iteration on a busy 120-core system with a deep queue and a pending
// dynamic request — the per-cycle cost of Algorithm 2.
func BenchmarkSchedulerIteration(b *testing.B) {
	cl := cluster.New(15, 8)
	rm := newBenchRM(cl)
	for i := 1; i <= 10; i++ {
		j := &job.Job{ID: job.ID(i), Cred: job.Credentials{User: "r"}, Cores: 8, Walltime: sim.Hour}
		rm.run(j)
	}
	for i := 11; i <= 60; i++ {
		rm.queued = append(rm.queued, &job.Job{
			ID: job.ID(i), Cred: job.Credentials{User: "q"}, Cores: 16,
			Walltime: sim.Hour, SubmitTime: sim.Time(i), State: job.Queued,
		})
	}
	evolving := rm.active[0]
	evolving.Class = job.Evolving
	s := core.New(core.Options{}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rm.dyn = []*job.DynRequest{{Job: evolving, Cores: 4}}
		evolving.State = job.DynQueued
		s.Iterate(sim.Minute, rm)
		// Undo the grant so every iteration sees the same state.
		cl.ReleasePartial(evolving.ID, cluster.Alloc{{NodeID: cl.AllocOf(evolving.ID)[len(cl.AllocOf(evolving.ID))-1].NodeID, Cores: 4}})
		evolving.DynCores = 0
	}
}

// BenchmarkESPEndToEnd measures the full 230-job simulation wall time
// (the paper's 4.4-hour run compresses to milliseconds).
func BenchmarkESPEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunESP(experiments.StandardConfigs()[1], esp.DefaultOpts())
	}
}

// BenchmarkESPLargeSystem scales the dynamic ESP workload to larger
// systems (ESP job sizes are fractions of the machine, so the mix
// scales with it) and runs the Dyn-HP configuration end to end — the
// ROADMAP's production-scale path through the incremental planner.
func BenchmarkESPLargeSystem(b *testing.B) {
	for _, cores := range []int{1024, 4096} {
		cores := cores
		b.Run(itoa(cores/1024)+"k-cores", func(b *testing.B) {
			var last *experiments.ESPResult
			for i := 0; i < b.N; i++ {
				opts := esp.DefaultOpts()
				opts.TotalCores = cores
				last = experiments.RunESP(experiments.StandardConfigs()[1], opts)
			}
			b.ReportMetric(last.Summary.MakespanMinutes, "makespan-min")
			b.ReportMetric(float64(last.Summary.SatisfiedDynJobs), "satisfied")
			b.ReportMetric(last.Summary.UtilizationPct, "util-%")
		})
	}
}

// benchRM is a minimal ResourceManager for iteration micro-benches.
type benchRM struct {
	cl     *cluster.Cluster
	queued []*job.Job
	active []*job.Job
	dyn    []*job.DynRequest
}

func newBenchRM(cl *cluster.Cluster) *benchRM { return &benchRM{cl: cl} }

func (r *benchRM) run(j *job.Job) {
	if r.cl.Allocate(j.ID, j.Cores) == nil {
		panic("benchRM: cannot place job")
	}
	j.State = job.Running
	r.active = append(r.active, j)
}

func (r *benchRM) Cluster() *cluster.Cluster      { return r.cl }
func (r *benchRM) QueuedJobs() []*job.Job         { return append([]*job.Job(nil), r.queued...) }
func (r *benchRM) ActiveJobs() []*job.Job         { return append([]*job.Job(nil), r.active...) }
func (r *benchRM) DynRequests() []*job.DynRequest { return append([]*job.DynRequest(nil), r.dyn...) }

func (r *benchRM) StartJob(j *job.Job) (cluster.Alloc, error) {
	alloc := r.cl.Allocate(j.ID, j.Cores)
	if alloc == nil {
		return nil, errNoRes
	}
	j.State = job.Running
	for i, q := range r.queued {
		if q.ID == j.ID {
			r.queued = append(r.queued[:i], r.queued[i+1:]...)
			break
		}
	}
	r.active = append(r.active, j)
	return alloc, nil
}

func (r *benchRM) GrantDyn(req *job.DynRequest) (cluster.Alloc, error) {
	alloc := r.cl.Allocate(req.Job.ID, req.TotalCores())
	if alloc == nil {
		return nil, errNoRes
	}
	req.Job.DynCores += req.TotalCores()
	req.Job.State = job.Running
	r.dyn = r.dyn[:0]
	return alloc, nil
}

func (r *benchRM) RejectDyn(req *job.DynRequest, reason string) {
	req.Job.State = job.Running
	r.dyn = r.dyn[:0]
}

func (r *benchRM) Preempt(j *job.Job) error { return errNoRes }

var errNoRes = &noResErr{}

type noResErr struct{}

func (*noResErr) Error() string { return "no resources" }

// BenchmarkAblationResizeSupport compares random mixed workloads with
// and without the resize extensions (malleable shrink/grow + moldable
// molding): the resizing scheduler should pack better.
func BenchmarkAblationResizeSupport(b *testing.B) {
	for _, resize := range []bool{false, true} {
		resize := resize
		name := "resize-off"
		if resize {
			name = "resize-on"
		}
		b.Run(name, func(b *testing.B) {
			var util, makespan float64
			for i := 0; i < b.N; i++ {
				util, makespan = 0, 0
				for seed := int64(1); seed <= 4; seed++ {
					spec := workload.DefaultSpec()
					spec.Seed = seed
					spec.Jobs = 80
					eng := sim.NewEngine()
					cl := cluster.New(15, 8)
					sched := core.New(core.Options{
						Config: config.Default(), Malleable: resize, Moldable: resize,
					}, 0)
					rec := metrics.NewRecorder(cl.TotalCores())
					srv := rms.NewServer(eng, cl, sched, rec)
					workload.SubmitAll(srv, workload.Generate(spec))
					srv.Run(10_000_000)
					util += rec.Utilization() * 100 / 4
					makespan += sim.MinutesOf(rec.Makespan()) / 4
				}
			}
			b.ReportMetric(util, "util-%")
			b.ReportMetric(makespan, "makespan-min")
		})
	}
}

// BenchmarkESPEfficiency reports the original ESP benchmark's
// efficiency metric (ideal-makespan ratio) per configuration.
func BenchmarkESPEfficiency(b *testing.B) {
	for _, cfg := range experiments.StandardConfigs() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				opts := esp.DefaultOpts()
				res := experiments.RunESP(cfg, opts)
				w := esp.Generate(opts)
				eff = esp.Efficiency(w.TotalWork(), 120, res.Recorder.Makespan())
			}
			b.ReportMetric(eff, "esp-efficiency")
		})
	}
}
