package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mom"
	"repro/internal/serverd"
)

// TestCLIRoundTrip builds the real client binaries and drives a live
// in-process cluster with them: qsub → qstat → qdel, the full
// user-facing surface of the batch system.
func TestCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	for _, tool := range []string{"qsub", "qstat", "qdel"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	srv := serverd.New(serverd.Options{
		Sched:        core.New(core.Options{}, 0),
		PollInterval: 20 * time.Millisecond,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	m := mom.New("clinode", 8)
	if err := m.Start("127.0.0.1:0", srv.Addr()); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	run := func(tool string, args ...string) string {
		t.Helper()
		out, err := exec.Command(filepath.Join(dir, tool), append([]string{"-server", srv.Addr()}, args...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	// qsub a short job and a long one to qdel.
	out := run("qsub", "-name", "cli-short", "-user", "alice", "-cores", "4",
		"-walltime", "60", "-script", "sleep:50ms")
	if !strings.HasPrefix(out, "job.") {
		t.Fatalf("qsub output: %q", out)
	}
	out = run("qsub", "-name", "cli-long", "-user", "bob", "-cores", "4",
		"-walltime", "600", "-script", "sleep:10m")
	longID := strings.TrimSpace(out)

	// qstat shows both jobs and the node.
	stat := run("qstat")
	if !strings.Contains(stat, "cli-short") || !strings.Contains(stat, "cli-long") ||
		!strings.Contains(stat, "clinode") {
		t.Fatalf("qstat output:\n%s", stat)
	}

	// qdel the long job; both reach terminal states.
	run("qdel", longID)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		stat = run("qstat")
		if strings.Contains(stat, "completed") && strings.Contains(stat, "cancelled") {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("jobs never reached terminal states:\n%s", stat)
}
