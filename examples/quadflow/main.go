// Quadflow demo: reproduces Fig. 7 — the adaptive CFD solver's two
// test cases run statically on 16 and 32 cores and dynamically growing
// 16→32 at the threshold-crossing grid adaptation — then runs the
// Cylinder case through the full simulated batch system to show the
// tm_dynget path end to end.
//
//	go run ./examples/quadflow
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/quadflow"
	"repro/internal/rms"
	"repro/internal/sim"
)

func main() {
	fmt.Println("== Fig. 7: closed-form phase model ==")
	for _, c := range quadflow.Cases() {
		runs := quadflow.Fig7(c, 16, 500*sim.Millisecond)
		fmt.Print(quadflow.FormatFig7(c, runs))
		fmt.Println()
	}

	fmt.Println("== Cylinder through the batch system ==")
	eng := sim.NewEngine()
	cl := cluster.New(15, 8)
	sc := config.Default()
	sc.Fairness = fairness.NewConfig(fairness.None)
	sched := core.New(core.Options{Config: sc}, 0)
	rec := metrics.NewRecorder(cl.TotalCores())
	srv := rms.NewServer(eng, cl, sched, rec)

	c := quadflow.Cylinder()
	app := &quadflow.App{Case: c, Dynamic: true}
	j := &job.Job{
		Name: "cylinder", Cred: job.Credentials{User: "cfd"},
		Class: job.Evolving, Cores: 16, Walltime: 40 * sim.Hour,
	}
	srv.Submit(j, app)

	// A competing rigid job occupies some nodes so the grant is not a
	// formality.
	other := &job.Job{
		Name: "other", Cred: job.Credentials{User: "chem"},
		Cores: 80, Walltime: 10 * sim.Hour,
	}
	srv.Submit(other, &rms.FixedApp{Runtime: 8 * sim.Hour})

	srv.Run(0)

	fmt.Printf("cylinder: started %s, finished %s (%.1f h), expanded: %v\n",
		sim.FormatTime(j.StartTime), sim.FormatTime(j.EndTime),
		sim.SecondsOf(j.EndTime-j.StartTime)/3600, app.Expanded())
	static := quadflow.Simulate(c, 16, false, 0, 0)
	fmt.Printf("static 16-core reference: %.1f h — dynamic saved %.1f%%\n",
		sim.SecondsOf(static.Total)/3600,
		quadflow.Savings(static, quadflow.RunResult{Total: j.EndTime - j.StartTime})*100)
}
