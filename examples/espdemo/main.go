// ESP demo: runs the dynamic ESP benchmark (Table I) under all four
// evaluation configurations of the paper and prints Table II plus a
// compact view of the Fig. 8 waiting-time phenomenon.
//
//	go run ./examples/espdemo
package main

import (
	"fmt"

	"repro/internal/esp"
	"repro/internal/experiments"
)

func main() {
	opts := esp.DefaultOpts()
	fmt.Printf("dynamic ESP: 230 jobs (69 evolving) on %d cores, seed %d\n\n", opts.TotalCores, opts.Seed)

	results := experiments.RunStandard(opts)
	fmt.Println(experiments.TableII(results))

	// Fig. 8 in one paragraph: compare Dyn-HP waits against Static in
	// submission order, bucketed.
	ws := results[0].Recorder.WaitSeries()
	wh := results[1].Recorder.WaitSeries()
	fmt.Println("Fig. 8 digest (Dyn-HP vs Static, 25-job buckets):")
	for lo := 0; lo < len(ws); lo += 25 {
		hi := lo + 25
		if hi > len(ws) {
			hi = len(ws)
		}
		worse, better := 0, 0
		for i := lo; i < hi; i++ {
			switch {
			case wh[i] > ws[i]+1:
				worse++
			case wh[i] < ws[i]-1:
				better++
			}
		}
		bar := func(n int, r rune) string {
			s := make([]rune, n)
			for i := range s {
				s[i] = r
			}
			return string(s)
		}
		fmt.Printf("  jobs %3d-%3d: worse %-25s better %s\n", lo+1, hi, bar(worse, '▒'), bar(better, '█'))
	}
	fmt.Println("\nthe contiguous 'worse' band is the unfairness the DFS policies bound;")
	fmt.Println("compare the Dyn-500/Dyn-600 rows of Table II for the cost of that bound.")

	for _, r := range results[1:] {
		fmt.Printf("%s: %d/%d evolving jobs satisfied, %d requests seen\n",
			r.Config.Name, r.GrantsSatisfied, 69, r.GrantAttempts)
	}
}
