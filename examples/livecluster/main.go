// Live-cluster demo: boots the real TCP daemons in one process — a
// pbs-server with an embedded scheduler, a separate maui-style check
// is available via cmd/maui — plus four pbs_moms, then submits an
// evolving application that grows by two nodes via tm_dynget, releases
// one via tm_dynfree, and finishes. Everything travels over real
// loopback sockets: the TM round trip, the server's scheduling cycle,
// and the mom↔mom dyn_join.
//
//	go run ./examples/livecluster
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/mom"
	"repro/internal/proto"
	"repro/internal/serverd"
	"repro/internal/tm"
)

func main() {
	sched := core.New(core.Options{}, 0)
	srv := serverd.New(serverd.Options{Sched: sched, PollInterval: 50 * time.Millisecond})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("pbs-server on %s\n", srv.Addr())

	for i := 0; i < 4; i++ {
		m := mom.New(fmt.Sprintf("node%d", i), 8)
		if err := m.Start("127.0.0.1:0", srv.Addr()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer m.Close()
		fmt.Printf("pbs-mom %s registered (TM at %s)\n", m.Name(), m.Addr())
	}

	done := make(chan struct{})
	mom.RegisterGoApp("demo-evolving", func(ctx context.Context, tmc *tm.Context) error {
		defer close(done)
		fmt.Println("[app] started on the initial allocation; computing...")
		time.Sleep(100 * time.Millisecond)

		fmt.Println("[app] grid adapted — calling tm_dynget for 2 nodes x 8")
		t0 := time.Now()
		hosts, err := tmc.DynGetNodes(2, 8)
		if err != nil {
			fmt.Printf("[app] rejected: %v (continuing on current allocation)\n", err)
			return nil
		}
		fmt.Printf("[app] granted in %v:", time.Since(t0))
		for _, h := range hosts {
			fmt.Printf(" %s:%d", h.Node, h.Cores)
		}
		fmt.Println(" — spawning workers there (MPI-2 style)")
		time.Sleep(100 * time.Millisecond)

		fmt.Printf("[app] phase done — tm_dynfree of %s\n", hosts[0].Node)
		if err := tmc.DynFree(hosts[:1]); err != nil {
			return err
		}
		time.Sleep(50 * time.Millisecond)
		return nil
	})

	id, err := srv.QSub(proto.JobSpec{
		Name: "demo", User: "alice", Nodes: 1, PPN: 8, WallSecs: 300,
		Script: "go:demo-evolving", Evolving: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("submitted job.%d\n", id)

	<-done
	// Wait for the completion report to land, then qstat.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.QStat()
		if len(st.Jobs) == 1 && st.Jobs[0].State == "completed" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := srv.QStat()
	fmt.Println("\nfinal qstat:")
	for _, j := range st.Jobs {
		fmt.Printf("  job.%d %-8s user=%s state=%s cores=%d\n", j.ID, j.Name, j.User, j.State, j.Cores)
	}
	for _, n := range st.Nodes {
		fmt.Printf("  %s: %d/%d cores used (%s)\n", n.Name, n.Used, n.Cores, n.State)
	}
}
