// Quickstart: build a small simulated cluster, submit a mix of rigid
// and evolving jobs, and watch the dynamic batch system grant an
// on-the-fly allocation — the minimal end-to-end tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// A 4-node × 8-core cluster, the scheduler with default Maui-ish
	// settings (ReservationDepth 5, EASY backfill) and no dynamic
	// fairness limits.
	eng := sim.NewEngine()
	cl := cluster.New(4, 8)
	sc := config.Default()
	sc.Fairness = fairness.NewConfig(fairness.None)
	sched := core.New(core.Options{Config: sc}, 0)
	rec := metrics.NewRecorder(cl.TotalCores())
	srv := rms.NewServer(eng, cl, sched, rec)
	tr := &trace.Log{}
	srv.Trace = tr

	// A rigid job: 16 cores for 20 minutes.
	rigid := &job.Job{
		Name: "rigid.1", Cred: job.Credentials{User: "alice"},
		Cores: 16, Walltime: 30 * sim.Minute,
	}
	srv.Submit(rigid, &rms.FixedApp{Runtime: 20 * sim.Minute})

	// An evolving job: starts on 8 cores; at 16% of its 40-minute
	// static execution time it asks for 8 more, finishing in 28
	// minutes if granted (the paper's SET/DET model).
	evolving := &job.Job{
		Name: "evolving.1", Cred: job.Credentials{User: "bob"},
		Class: job.Evolving, Cores: 8, Walltime: sim.Hour,
	}
	app := &rms.EvolvingApp{
		SET: 40 * sim.Minute, DET: 28 * sim.Minute,
		ExtraCores: 8, AttemptFracs: rms.DefaultAttemptFracs(),
	}
	srv.Submit(evolving, app)

	// A latecomer that has to wait for free cores.
	late := &job.Job{
		Name: "late.1", Cred: job.Credentials{User: "carol"},
		Cores: 8, Walltime: 15 * sim.Minute,
	}
	srv.SubmitAt(12*sim.Minute, late, &rms.FixedApp{Runtime: 10 * sim.Minute})

	// Run the discrete-event simulation to completion.
	srv.Run(0)

	fmt.Println("job        user    class     start      end        wait     cores(+dyn)")
	for _, r := range rec.Jobs() {
		dyn := ""
		if r.DynGranted {
			dyn = fmt.Sprintf(" (grew at %s)", sim.FormatTime(r.GrantTime))
		}
		fmt.Printf("%-10s %-7s %-9v %-10s %-10s %-8s %d%s\n",
			r.Type, r.User, r.Evolving, sim.FormatTime(r.Start), sim.FormatTime(r.End),
			sim.FormatTime(r.Wait()), r.Cores, dyn)
	}
	fmt.Printf("\nutilization %.1f%%, throughput %.2f jobs/min, %d dynamic grant(s)\n",
		rec.Utilization()*100, rec.Throughput(), rec.SatisfiedDynJobs())
	if app.Granted() {
		fmt.Println("the evolving job obtained its extra cores at runtime — no oversized static allocation needed")
	}

	fmt.Println("\nschedule ('=' running, '#' after dynamic expansion, 'b' backfilled):")
	fmt.Print(tr.Gantt(60))
}
