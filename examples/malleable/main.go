// Malleable & fault-tolerance demo: the two future-work extensions of
// the paper working together. A malleable analysis job shares the
// cluster with an evolving solver; the scheduler shrinks the malleable
// job to serve the solver's tm_dynget, grows it back afterwards, and
// when a node fails the fault-aware solver obtains a spare node
// dynamically instead of dying.
//
//	go run ./examples/malleable
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ftSolver is an evolving app that also survives node failures by
// requesting replacement resources.
type ftSolver struct {
	rms.EvolvingApp
}

func (a *ftSolver) OnNodeFailure(s *rms.Server, j *job.Job, lost int, now sim.Time) bool {
	fmt.Printf("%s [solver] lost %d cores to a node failure — requesting spares\n",
		sim.FormatTime(now), lost)
	_ = s.RequestDyn(j, lost)
	return true // keep running (degraded until the spare arrives)
}

func main() {
	eng := sim.NewEngine()
	cl := cluster.New(5, 8)
	sc := config.Default()
	sc.Fairness = fairness.NewConfig(fairness.None)
	sched := core.New(core.Options{Config: sc, Malleable: true}, 0)
	rec := metrics.NewRecorder(cl.TotalCores())
	srv := rms.NewServer(eng, cl, sched, rec)
	tr := &trace.Log{}
	srv.Trace = tr

	// The malleable analysis job: it may be shrunk to 8 cores when
	// someone needs resources, and grown back to 16 afterwards.
	analysis := &job.Job{
		Name: "analysis", Cred: job.Credentials{User: "ana"}, Class: job.Malleable,
		Cores: 16, MinCores: 8, MaxCores: 16, Walltime: 2 * sim.Hour,
	}
	srv.Submit(analysis, &rms.MalleableWorkApp{Work: 16 * 2400}) // 40 min at 16

	// The evolving solver: 16 cores, asks for 8 more at 16% of SET.
	solver := &job.Job{
		Name: "solver", Cred: job.Credentials{User: "cfd"}, Class: job.Evolving,
		Cores: 16, Walltime: 2 * sim.Hour,
	}
	app := &ftSolver{EvolvingApp: rms.EvolvingApp{
		SET: 50 * sim.Minute, DET: 35 * sim.Minute,
		ExtraCores: 8, AttemptFracs: rms.DefaultAttemptFracs(),
	}}
	srv.Submit(solver, app)

	// A node fails 20 minutes in.
	eng.At(20*sim.Minute, "node failure", func(now sim.Time) {
		id := cl.AllocOf(solver.ID)[0].NodeID
		fmt.Printf("%s [cluster] node%d fails\n", sim.FormatTime(now), id)
		srv.FailNode(id)
	})

	srv.Run(0)

	fmt.Println()
	for _, r := range rec.Jobs() {
		fmt.Printf("%-9s finished at %s on %d cores (dyn granted: %v)\n",
			r.Type, sim.FormatTime(r.End), r.Cores, r.DynGranted)
	}
	fmt.Println("\nevent log:")
	for _, e := range tr.Events() {
		if e.Kind == trace.Shrink || e.Kind == trace.Grow ||
			e.Kind == trace.DynGrant || e.Kind == trace.NodeDown {
			fmt.Printf("  %s %-8s %-9s %d cores %s\n",
				sim.FormatTime(e.At), e.Kind, e.Job, e.Cores, e.Note)
		}
	}
	fmt.Println("\nschedule:")
	fmt.Print(tr.Gantt(60))
}
