// Fairness demo: parses the exact dynamic-fairness configuration of
// Fig. 6 and walks through the paper's §III-D scenarios — per-user
// cumulative budgets, per-job limits, permission vetoes, group
// accumulation, and the DFSDecay interval rollover — showing each
// Evaluate verdict.
//
//	go run ./examples/fairness
package main

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/sim"
)

const fig6 = `
DFSPOLICY         DFSSINGLEANDTARGETDELAY
DFSINTERVAL       06:00:00
DFSDECAY          0.4
USERCFG[user01]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=3600 \
                  DFSSINGLEDELAYTIME=0
USERCFG[user02]   DFSDYNDELAYPERM=0
USERCFG[user03]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=0 \
                  DFSSINGLEDELAYTIME=00:30:00
USERCFG[user04]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=02:00:00 \
                  DFSSINGLEDELAYTIME=00:15:00
GROUPCFG[group05] DFSTARGETDELAYTIME=04:00:00
GROUPCFG[group06] DFSDYNDELAYPERM=0
`

func main() {
	cfg, err := config.Parse(fig6)
	if err != nil {
		panic(err)
	}
	f := cfg.Fairness
	fmt.Printf("policy %s, interval %s, decay %.1f\n\n",
		f.Policy, config.FormatDuration(f.Interval), f.Decay)

	tr := fairness.NewTracker(f, 0)
	evolver := job.Credentials{User: "user06", Group: "grp06"}
	mk := func(id int, user, group string) *job.Job {
		return &job.Job{ID: job.ID(id), Cred: job.Credentials{User: user, Group: group}}
	}
	show := func(what string, delays []fairness.JobDelay) {
		d := tr.Evaluate(evolver, delays)
		verdict := "ALLOWED"
		if !d.Allowed {
			verdict = "REJECTED: " + d.Reason
		}
		fmt.Printf("%-58s -> %s\n", what, verdict)
		if d.Allowed {
			tr.Charge(evolver, delays)
		}
	}

	show("delay user01's job by 45 min (1h cumulative budget)",
		[]fairness.JobDelay{{Job: mk(1, "user01", "g"), Delay: 45 * sim.Minute}})
	show("delay user01's next job by 30 min (would exceed 1h)",
		[]fairness.JobDelay{{Job: mk(2, "user01", "g"), Delay: 30 * sim.Minute}})
	show("delay user02's job by 1 s (DFSDYNDELAYPERM=0)",
		[]fairness.JobDelay{{Job: mk(3, "user02", "g"), Delay: sim.Second}})
	show("delay user03's job by 29 min (30 min per-job limit)",
		[]fairness.JobDelay{{Job: mk(4, "user03", "g"), Delay: 29 * sim.Minute}})
	show("delay the same user03 job 5 more min (total would be 34)",
		[]fairness.JobDelay{{Job: mk(4, "user03", "g"), Delay: 5 * sim.Minute}})
	show("delay user03 by 10h across many jobs (no cumulative limit)",
		[]fairness.JobDelay{
			{Job: mk(5, "user03", "g"), Delay: 25 * sim.Minute},
			{Job: mk(6, "user03", "g"), Delay: 25 * sim.Minute},
		})
	show("delay two group05 members 2h+2h (4h group budget, shared)",
		[]fairness.JobDelay{
			{Job: mk(7, "a", "group05"), Delay: 2 * sim.Hour},
			{Job: mk(8, "b", "group05"), Delay: 2 * sim.Hour},
		})
	show("one more second for group05 (budget exhausted)",
		[]fairness.JobDelay{{Job: mk(9, "c", "group05"), Delay: sim.Second}})
	show("delay user06's own queued job by 5h (same-user exemption)",
		[]fairness.JobDelay{{Job: mk(10, "user06", "g"), Delay: 5 * sim.Hour}})

	// Interval rollover: after six hours the charges decay by 0.4.
	tr.Advance(6*sim.Hour + sim.Second)
	u1 := tr.EntityUsage(fairness.EntityKey{Kind: fairness.KindUser, Name: "user01"})
	fmt.Printf("\nafter one interval, user01's carried-over charge: %s (decay 0.4 of 45 min)\n",
		config.FormatDuration(u1))
	show("delay user01 by 30 min in the new interval",
		[]fairness.JobDelay{{Job: mk(11, "user01", "g"), Delay: 30 * sim.Minute}})
}
