// Command wrksim runs a synthetic random workload (rigid + evolving +
// malleable jobs) through the simulated dynamic batch system and
// reports scheduling outcomes: the Table II-style summary, per-user
// accounting, waiting-time percentiles, bounded slowdown, and
// optionally the ASCII Gantt chart of the schedule. It is the
// capacity-planning companion to cmd/esprun's fixed paper workload.
//
//	wrksim -jobs 200 -seed 7 -evolving 0.3 -malleable 0.1 \
//	       -policy target -limit 500 -gantt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/metrics"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		jobs      = flag.Int("jobs", 150, "number of jobs")
		seed      = flag.Int64("seed", 1, "generator seed")
		cores     = flag.Int("cores", 120, "total cores (8 per node)")
		evolving  = flag.Float64("evolving", 0.3, "evolving job fraction")
		malleable = flag.Float64("malleable", 0.1, "malleable job fraction")
		meanRun   = flag.Duration("mean-runtime", 0, "mean job runtime (real-time units; default 10m virtual)")
		policy    = flag.String("policy", "none", "dynamic fairness: none | target | single")
		limit     = flag.Int64("limit", 500, "per-user delay budget/limit in seconds")
		interval  = flag.Int64("interval", 3600, "DFS interval in seconds")
		resize    = flag.Bool("resize", true, "enable malleable shrink/grow and moldable molding")
		gantt     = flag.Bool("gantt", false, "print the schedule as an ASCII Gantt chart")
		width     = flag.Int("gantt-width", 100, "gantt width in cells")
	)
	flag.Parse()

	spec := workload.DefaultSpec()
	spec.Jobs = *jobs
	spec.Seed = *seed
	spec.TotalCores = *cores
	spec.EvolvingFrac = *evolving
	spec.MalleableFrac = *malleable
	if *meanRun > 0 {
		spec.MeanRuntime = sim.FromReal(*meanRun)
	}

	sc := config.Default()
	f := fairness.NewConfig(fairness.None)
	switch *policy {
	case "none":
	case "target":
		f = fairness.NewConfig(fairness.TargetDelay)
	case "single":
		f = fairness.NewConfig(fairness.SingleJobDelay)
	default:
		fmt.Fprintf(os.Stderr, "wrksim: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if f.Policy != fairness.None {
		f.Interval = sim.Duration(*interval) * sim.Second
		for u := 0; u < spec.Users; u++ {
			f.Set(fairness.KindUser, fmt.Sprintf("wuser%02d", u), fairness.Limits{
				TargetDelayTime: sim.Duration(*limit) * sim.Second,
				SingleDelayTime: sim.Duration(*limit) * sim.Second,
			})
		}
	}
	sc.Fairness = f

	eng := sim.NewEngine()
	nodes := (*cores + 7) / 8
	cl := cluster.New(nodes, 8)
	sched := core.New(core.Options{Config: sc, Malleable: *resize, Moldable: *resize}, 0)
	rec := metrics.NewRecorder(cl.TotalCores())
	srv := rms.NewServer(eng, cl, sched, rec)
	var tr *trace.Log
	if *gantt {
		tr = &trace.Log{}
		srv.Trace = tr
	}
	grants, attempts := 0, 0
	srv.OnIteration = func(ir *core.IterationResult) {
		for _, d := range ir.DynDecisions {
			if d.Deferred {
				continue
			}
			attempts++
			if d.Granted {
				grants++
			}
		}
	}
	workload.SubmitAll(srv, workload.Generate(spec))
	srv.Run(50_000_000)

	s := rec.Summarize(fmt.Sprintf("seed%d", *seed))
	fmt.Printf("jobs %d (completed %d, cancelled %d) on %d cores, policy %s\n",
		*jobs, srv.Completed(), srv.Cancelled(), cl.TotalCores(), f.Policy)
	fmt.Printf("makespan %.1f min | utilization %.1f%% | throughput %.2f jobs/min\n",
		s.MakespanMinutes, s.UtilizationPct, s.ThroughputJPM)
	p50, p90, p99 := rec.WaitPercentiles()
	fmt.Printf("wait p50/p90/p99: %.0f / %.0f / %.0f s | mean bounded slowdown %.2f\n",
		p50, p90, p99, rec.MeanBoundedSlowdown())
	fmt.Printf("dynamic requests: %d granted of %d decided | %d jobs backfilled\n\n",
		grants, attempts, s.Backfilled)
	fmt.Print(metrics.FormatUsage(rec.UsageByUser()))

	if tr != nil {
		fmt.Println("\nschedule ('=' running, '#' after dynamic growth, 'b' backfilled):")
		fmt.Print(tr.Gantt(*width))
	}
}
