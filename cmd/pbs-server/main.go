// Command pbs-server runs the live batch server daemon (the pbs_server
// analog). By default it embeds the scheduler; with -external-sched it
// expects a separate maui daemon to drive scheduling over the sched
// protocol, matching the paper's two-daemon headnode.
//
//	pbs-server -addr 127.0.0.1:15001 -config maui.cfg
//	pbs-server -addr 127.0.0.1:15001 -external-sched
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/rms"
	"repro/internal/serverd"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:15001", "listen address")
		cfgPath   = flag.String("config", "", "Maui-style scheduler config file (Fig. 6 format)")
		external  = flag.Bool("external-sched", false, "disable the embedded scheduler; use a maui daemon")
		poll      = flag.Duration("poll", 2*time.Second, "embedded scheduler idle poll interval")
		heartbeat = flag.Duration("heartbeat", 0, "failure-detection interval (0 disables; moms silent for -heartbeat-misses intervals are declared down)")
		misses    = flag.Int("heartbeat-misses", 3, "whole heartbeat intervals a mom may stay silent before its node is declared down")
		failPol   = flag.String("fail-policy", "cancel", "what happens to jobs on a failed node: cancel or requeue")
		handshake = flag.Duration("handshake-timeout", 0, "deadline for an inbound connection's first message (0 disables)")
		protoFlag = flag.String("proto", "auto", "wire protocol for peers: v1 (JSON), v2 (binary) or auto (negotiate v2, serve v1)")
		verbose   = flag.Bool("v", false, "verbose logging")
	)
	flag.Parse()

	mode, err := proto.ParseMode(*protoFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbs-server: %v\n", err)
		os.Exit(1)
	}
	opts := serverd.Options{
		PollInterval:      *poll,
		Verbose:           *verbose,
		HeartbeatInterval: *heartbeat,
		HeartbeatMisses:   *misses,
		HandshakeTimeout:  *handshake,
		ProtoMode:         mode,
	}
	switch *failPol {
	case "cancel":
		opts.FailurePolicy = rms.FailCancel
	case "requeue":
		opts.FailurePolicy = rms.FailRequeue
	default:
		fmt.Fprintf(os.Stderr, "pbs-server: unknown -fail-policy %q (want cancel or requeue)\n", *failPol)
		os.Exit(1)
	}
	if !*external {
		sc := config.Default()
		if *cfgPath != "" {
			text, err := os.ReadFile(*cfgPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pbs-server: %v\n", err)
				os.Exit(1)
			}
			sc, err = config.Parse(string(text))
			if err != nil {
				fmt.Fprintf(os.Stderr, "pbs-server: %s: %v\n", *cfgPath, err)
				os.Exit(1)
			}
		}
		opts.Sched = core.New(core.Options{Config: sc}, 0)
	}
	srv := serverd.New(opts)
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "pbs-server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pbs-server listening on %s (embedded scheduler: %v)\n", srv.Addr(), !*external)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("pbs-server shutting down")
	srv.Close()
}
