// Command maui runs the scheduler daemon (the Maui analog) against a
// pbs-server started with -external-sched. Each iteration pulls the
// workload snapshot, plans with the extended Maui iteration
// (Algorithm 2 — including dynamic requests and the dynamic fairness
// policies), and commits the decisions.
//
//	maui -server 127.0.0.1:15001 -config maui.cfg -interval 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mauid"
	"repro/internal/proto"
)

func main() {
	var (
		server    = flag.String("server", "127.0.0.1:15001", "pbs-server address")
		cfgPath   = flag.String("config", "", "Maui-style config file (Fig. 6 format)")
		interval  = flag.Duration("interval", time.Second, "iteration interval")
		protoFlag = flag.String("proto", "auto", "wire protocol: v1 (JSON), v2 (binary) or auto (negotiate v2, fall back to v1)")
	)
	flag.Parse()

	mode, err := proto.ParseMode(*protoFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "maui: %v\n", err)
		os.Exit(1)
	}
	sc := config.Default()
	if *cfgPath != "" {
		text, err := os.ReadFile(*cfgPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maui: %v\n", err)
			os.Exit(1)
		}
		sc, err = config.Parse(string(text))
		if err != nil {
			fmt.Fprintf(os.Stderr, "maui: %s: %v\n", *cfgPath, err)
			os.Exit(1)
		}
	}
	d := mauid.New(*server, core.New(core.Options{Config: sc}, 0), *interval)
	d.Proto = mode
	d.Start()
	fmt.Printf("maui scheduling %s every %v (DFSPolicy %s)\n", *server, *interval, sc.Fairness.Policy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	d.Close()
}
