// Command schedlint runs the repo's custom static analyzers over Go
// packages and reports violations of the determinism, locking and
// protocol invariants the scheduler reproduction depends on:
//
//	nodeterminism  wall-clock / global-rand use in deterministic packages
//	maporder       order-sensitive work inside range-over-map
//	lockcheck      `// guarded by mu` discipline and Lock/Unlock pairing
//	protoerr       dropped proto.Conn Send/Recv/Request/Close errors
//
// Usage:
//
//	go run ./cmd/schedlint [packages...]   (default: repro/...)
//
// Findings print as file:line:col: analyzer: message, and a non-zero
// exit status makes the CI lint job fail. See DESIGN.md "Determinism &
// static analysis" for the suppression directives each analyzer
// honours.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/loader"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nodeterminism"
	"repro/internal/analysis/protoerr"
)

var analyzers = []*analysis.Analyzer{
	nodeterminism.Analyzer,
	maporder.Analyzer,
	lockcheck.Analyzer,
	protoerr.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"repro/..."}
	}
	// ./... style patterns depend on the working directory; module-path
	// patterns are resolved by go list either way.
	for i, p := range patterns {
		if p == "all" {
			patterns[i] = "repro/..."
		}
	}

	l := loader.New()
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}

	broken := 0
	var findings []analysis.Finding
	for _, p := range pkgs {
		// The analyzers' own golden-test fixtures intentionally violate
		// every invariant; they are inputs, not code under analysis.
		if strings.Contains(p.ImportPath, "/testdata/") {
			continue
		}
		for _, e := range p.ParseErrors {
			fmt.Fprintf(os.Stderr, "schedlint: %s: %v\n", p.ImportPath, e)
			broken++
		}
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "schedlint: %s: %v\n", p.ImportPath, e)
			broken++
		}
		if broken > 0 {
			continue
		}
		fs, err := analysis.RunAnalyzers(p.Target(), analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedlint: %s: %v\n", p.ImportPath, err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if broken > 0 {
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
