// Command schedlint runs the repo's custom static analyzers over Go
// packages and reports violations of the determinism, locking and
// protocol invariants the scheduler reproduction depends on:
//
//	nodeterminism    wall-clock / global-rand use in deterministic packages
//	maporder         order-sensitive work inside range-over-map
//	lockcheck        `// guarded by mu` discipline and Lock/Unlock pairing
//	protoerr         dropped proto.Conn Send/Recv/Request/Close errors
//	lockorder        interprocedural self-deadlocks, ABBA cycles, declared-order violations
//	protoexhaustive  proto message registry ↔ daemon dispatch switch agreement
//	goroutinelife    every go statement needs a provable shutdown path
//	epochguard       writes to epoch-guarded fields must reach their bump before return
//	poollife         pooled objects: no use after release, released or escaped on every path
//	arenasafe        arena refs die at the next Alloc; handles die at Reset/CopyFrom/Free
//	atomicfield      sync/atomic fields: atomic everywhere, declared, 64-bit aligned on 386
//	sharedguard      fields written from several goroutine contexts need a declared guard
//	chanlife         channel fields: one closing owner, no send-after-close or double close
//
// Usage:
//
//	go run ./cmd/schedlint [-json|-sarif] [-tests] [-o file] [packages...]   (default: repro/...)
//
// -tests re-checks each package with its _test.go files included and
// adds external test packages; only analyzers that opt in (the
// memory-model trio above) report findings inside test files.
//
// Output modes:
//
//	(default)  file:line:col: analyzer: message, one finding per line
//	-json      a JSON array of findings {analyzer, file, line, col, message}
//	-sarif     SARIF 2.1.0, for CI upload as code-scanning annotations
//
// Exit codes are a stable contract for CI and tooling:
//
//	0  clean — the packages loaded and no analyzer reported a finding
//	1  findings were reported (the requested report was still written)
//	2  the load or an analyzer failed: pattern expansion, parse or type
//	   errors, or an internal analyzer error; findings are unreliable
//
// See DESIGN.md "Determinism & static analysis" for the suppression
// directives each analyzer honours.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/arenasafe"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/chanlife"
	"repro/internal/analysis/epochguard"
	"repro/internal/analysis/goroutinelife"
	"repro/internal/analysis/loader"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/nodeterminism"
	"repro/internal/analysis/poollife"
	"repro/internal/analysis/protoerr"
	"repro/internal/analysis/protoexhaustive"
	"repro/internal/analysis/sharedguard"
)

var analyzers = []*analysis.Analyzer{
	nodeterminism.Analyzer,
	maporder.Analyzer,
	lockcheck.Analyzer,
	protoerr.Analyzer,
	lockorder.Analyzer,
	protoexhaustive.Analyzer,
	goroutinelife.Analyzer,
	epochguard.Analyzer,
	poollife.Analyzer,
	arenasafe.Analyzer,
	atomicfield.Analyzer,
	sharedguard.Analyzer,
	chanlife.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	tests := flag.Bool("tests", false, "include _test.go files and external test packages")
	outPath := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "schedlint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"repro/..."}
	}
	// ./... style patterns depend on the working directory; module-path
	// patterns are resolved by go list either way.
	for i, p := range patterns {
		if p == "all" {
			patterns[i] = "repro/..."
		}
	}

	l := loader.New()
	l.IncludeTests = *tests
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}

	broken := 0
	var findings []analysis.Finding
	for _, p := range pkgs {
		// The analyzers' own golden-test fixtures intentionally violate
		// every invariant; they are inputs, not code under analysis.
		if strings.Contains(p.ImportPath, "/testdata/") {
			continue
		}
		for _, e := range p.ParseErrors {
			fmt.Fprintf(os.Stderr, "schedlint: %s: %v\n", p.ImportPath, e)
			broken++
		}
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "schedlint: %s: %v\n", p.ImportPath, e)
			broken++
		}
		if broken > 0 {
			continue
		}
		target := p.Target()
		target.Dep = l.DepResolver()
		fs, err := analysis.RunAnalyzers(target, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedlint: %s: %v\n", p.ImportPath, err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if broken > 0 {
		os.Exit(2)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedlint:", err)
			os.Exit(2)
		}
		defer f.Close()
		out = f
	}
	switch {
	case *sarifOut:
		err = writeSARIF(out, findings)
	case *jsonOut:
		err = writeJSON(out, findings)
	default:
		for _, f := range findings {
			fmt.Fprintln(out, f.String())
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the -json record shape; field names are part of the
// output contract.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, findings []analysis.Finding) error {
	recs := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		recs = append(recs, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relPath(f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// SARIF 2.1.0, the minimal subset GitHub code scanning consumes: one
// run, one rule per analyzer, one result per finding with a physical
// location. Repo-relative URIs keep the upload working regardless of
// the runner's checkout directory.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(w io.Writer, findings []analysis.Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "schedlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relPath makes a filename repository-relative (slash-separated) when
// it sits under the working directory; SARIF viewers and annotation
// uploads want URIs rooted at the checkout.
func relPath(name string) string {
	wd, err := os.Getwd()
	if err != nil {
		return filepath.ToSlash(name)
	}
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}
