package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/loader"
)

// BenchmarkSchedlintRepo measures a whole-repo schedlint sweep, tests
// included: one shared parse+typecheck load feeds all thirteen
// analyzers (BENCH_lint.json tracks the wall time). The load-ms metric
// separates the load from the analyzer passes — the loader caches each
// package and analyzers memoize the call graph per target, so the
// analysis cost is paid once per package, not once per analyzer.
// The sweep doubles as a regression gate: the repo must be clean.
func BenchmarkSchedlintRepo(b *testing.B) {
	var loadMS, pkgCount float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		l := loader.New()
		l.IncludeTests = true
		pkgs, err := l.Load("repro/...")
		if err != nil {
			b.Fatal(err)
		}
		loadMS = float64(time.Since(start).Milliseconds())
		analyzed := 0
		findings := 0
		for _, p := range pkgs {
			if strings.Contains(p.ImportPath, "/testdata/") {
				continue
			}
			if len(p.ParseErrors) > 0 || len(p.TypeErrors) > 0 {
				b.Fatalf("%s: %v %v", p.ImportPath, p.ParseErrors, p.TypeErrors)
			}
			target := p.Target()
			target.Dep = l.DepResolver()
			fs, err := analysis.RunAnalyzers(target, analyzers)
			if err != nil {
				b.Fatal(err)
			}
			findings += len(fs)
			analyzed++
		}
		if findings != 0 {
			b.Fatalf("repo not clean: %d finding(s)", findings)
		}
		pkgCount = float64(analyzed)
	}
	b.ReportMetric(loadMS, "load-ms")
	b.ReportMetric(pkgCount, "packages")
	b.ReportMetric(float64(len(analyzers)), "analyzers")
}
