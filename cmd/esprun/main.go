// Command esprun regenerates the paper's evaluation artifacts: the
// dynamic ESP benchmark of Table I, the four-configuration comparison
// of Table II, the waiting-time series of Figs. 8–11, the Quadflow
// execution-time breakdown of Fig. 7, and the live-daemon dynamic
// allocation overhead of Fig. 12.
//
// Usage:
//
//	esprun -table1          # print the Table I job mix
//	esprun -table2          # run all four configurations, print Table II
//	esprun -fig7            # Quadflow static/dynamic runs
//	esprun -fig8            # waits: Static vs Dyn-HP (TSV)
//	esprun -fig9            # type-L waits, all configs (TSV)
//	esprun -fig10           # waits: Static, Dyn-HP, Dyn-500 (TSV)
//	esprun -fig11           # waits: Static, Dyn-HP, Dyn-600 (TSV)
//	esprun -fig12           # live-daemon allocation overhead
//	esprun -all             # everything above
//	esprun -seed 7 -cores 120 -walltime-factor 1.0
//
// Campaign mode fans independent runs across a worker pool; output is
// byte-identical at any worker count (results are keyed by task index,
// never completion order):
//
//	esprun -table2 -parallel 8        # four configs on 8 workers
//	esprun -campaign seeds -seeds 10  # configs × seeds sweep
//	esprun -campaign fraction         # evolving-fraction sweep 0–100%
//	esprun -campaign scale            # cluster sizes 15–1024 nodes
//
// The fairshare stress campaign drives the hierarchical share tree at
// issue scale (1M users across 10k queues by default) and can stream
// the allocation history for offline fairness analysis:
//
//	esprun -campaign fairshare -fair-users 1000000 -fair-queues 10000
//	esprun -campaign fairshare -alloc-history hist.csv -alloc-format csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/campaign"
	"repro/internal/esp"
	"repro/internal/experiments"
	"repro/internal/fairtree"
	"repro/internal/metrics"
	"repro/internal/quadflow"
	"repro/internal/sim"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print the dynamic ESP job mix (Table I)")
		table2   = flag.Bool("table2", false, "run the four configurations and print Table II")
		fig7     = flag.Bool("fig7", false, "run the Quadflow cases (Fig. 7)")
		fig8     = flag.Bool("fig8", false, "waiting times Static vs Dyn-HP (Fig. 8)")
		fig9     = flag.Bool("fig9", false, "type-L waiting times, all configs (Fig. 9)")
		fig10    = flag.Bool("fig10", false, "waiting times Static/Dyn-HP/Dyn-500 (Fig. 10)")
		fig11    = flag.Bool("fig11", false, "waiting times Static/Dyn-HP/Dyn-600 (Fig. 11)")
		fig12    = flag.Bool("fig12", false, "live-daemon dynamic allocation overhead (Fig. 12)")
		all      = flag.Bool("all", false, "run everything")
		usage    = flag.Bool("usage", false, "per-user accounting of the Dyn-HP run")
		gantt    = flag.Bool("gantt", false, "ASCII Gantt chart of the Dyn-HP schedule")
		seed     = flag.Int64("seed", esp.DefaultOpts().Seed, "submission-order seed")
		cores    = flag.Int("cores", 120, "total system cores (15 nodes x 8 in the paper)")
		wfactor  = flag.Float64("walltime-factor", 1.0, "requested walltime as a multiple of SET")
		maxN     = flag.Int("fig12-nodes", 10, "largest dynamic allocation for -fig12")
		samples  = flag.Int("fig12-samples", 3, "samples per Fig. 12 point")
		parallel = flag.Int("parallel", 1, "campaign workers (0 = GOMAXPROCS); output is identical at any count")
		camp     = flag.String("campaign", "", "run a sweep campaign: seeds | fraction | scale | fairshare")
		nSeeds   = flag.Int("seeds", 5, "seed count for -campaign seeds (seed, seed+1, ...)")
		scaleJob = flag.Bool("scale-jobs", false, "extend -campaign scale with the 50k/100k-job queue-depth points (long runs)")
		fairU    = flag.Int("fair-users", 1_000_000, "user leaves for -campaign fairshare")
		fairQ    = flag.Int("fair-queues", 10_000, "queue groups for -campaign fairshare")
		fairE    = flag.Int("fair-epochs", 3, "decay intervals for -campaign fairshare")
		histPath = flag.String("alloc-history", "", "stream the fairshare allocation history to this file")
		histFmt  = flag.String("alloc-format", "csv", "allocation-history format: csv | jsonl")
	)
	flag.Parse()

	if !(*table1 || *table2 || *fig7 || *fig8 || *fig9 || *fig10 || *fig11 || *fig12 || *usage || *gantt || *all || *camp != "") {
		flag.Usage()
		os.Exit(2)
	}

	opts := esp.DefaultOpts()
	opts.Seed = *seed
	opts.TotalCores = *cores
	opts.WalltimeFactor = *wfactor

	if *table1 || *all {
		fmt.Println("=== Table I: dynamic ESP job mix ===")
		fmt.Print(esp.FormatTableI(opts.TotalCores))
		w := esp.Generate(opts)
		total, evolving, rigid := w.Counts()
		fmt.Printf("jobs: %d total, %d evolving (%.0f%%), %d rigid; total work %.0f core-seconds\n\n",
			total, evolving, float64(evolving)/float64(total)*100, rigid, w.TotalWork())
	}

	copts := campaign.Options{Workers: *parallel, OnProgress: progressLine}

	if *camp != "" {
		ff := fairFlags{users: *fairU, queues: *fairQ, epochs: *fairE,
			workers: *parallel, histPath: *histPath, histFmt: *histFmt}
		runCampaign(*camp, opts, copts, *nSeeds, *scaleJob, ff)
	}

	var results []*experiments.ESPResult
	need := *table2 || *fig8 || *fig9 || *fig10 || *fig11 || *usage || *gantt || *all
	if need {
		fmt.Fprintf(os.Stderr, "running the four ESP configurations (seed %d, %d cores, %d workers)...\n",
			opts.Seed, opts.TotalCores, *parallel)
		results = experiments.RunStandardParallel(opts, copts)
		endProgress()
	}

	if *table2 || *all {
		fmt.Println("=== Table II: performance comparison ===")
		fmt.Print(experiments.TableII(results))
		fmt.Println()
	}
	if *fig8 || *all {
		fmt.Println("=== Fig. 8: waiting times, Static vs Dyn-HP (seconds, submission order) ===")
		fmt.Print(experiments.WaitComparison(results[:2]))
		fmt.Println()
	}
	if *fig9 || *all {
		fmt.Println("=== Fig. 9: type-L waiting times, all configurations ===")
		fmt.Print(experiments.TypeLComparison(results))
		fmt.Println()
	}
	if *fig10 || *all {
		fmt.Println("=== Fig. 10: waiting times, Static / Dyn-HP / Dyn-500 ===")
		fmt.Print(experiments.WaitComparison(results[:3]))
		fmt.Println()
	}
	if *fig11 || *all {
		fmt.Println("=== Fig. 11: waiting times, Static / Dyn-HP / Dyn-600 ===")
		fmt.Print(experiments.WaitComparison([]*experiments.ESPResult{results[0], results[1], results[3]}))
		fmt.Println()
	}
	if *usage || *all {
		fmt.Println("=== Per-user accounting (Dyn-HP run) ===")
		rec := results[1].Recorder
		fmt.Print(metrics.FormatUsage(rec.UsageByUser()))
		p50, p90, p99 := rec.WaitPercentiles()
		fmt.Printf("wait p50/p90/p99: %.0f / %.0f / %.0f s; mean bounded slowdown %.2f\n\n",
			p50, p90, p99, rec.MeanBoundedSlowdown())
	}
	if *gantt {
		fmt.Println("=== Dyn-HP schedule ('=' running, '#' grown, 'b' backfilled) ===")
		fmt.Print(results[1].Trace.Gantt(120))
		fmt.Println()
	}
	if *fig7 || *all {
		fmt.Println("=== Fig. 7: Quadflow execution times by adaptation phase ===")
		for _, c := range quadflow.Cases() {
			runs := quadflow.Fig7(c, 16, 500*sim.Millisecond)
			fmt.Print(quadflow.FormatFig7(c, runs))
		}
		fmt.Println()
	}
	if *fig12 || *all {
		fmt.Fprintf(os.Stderr, "measuring live-daemon allocation overhead (1..%d nodes)...\n", *maxN)
		f12 := experiments.DefaultFig12Opts()
		f12.MaxNodes = *maxN
		f12.Samples = *samples
		points, err := experiments.RunFig12(f12)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig12: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("=== Fig. 12: dynamic allocation overhead (live TCP daemons) ===")
		fmt.Print(experiments.FormatFig12(points))
	}
}

// progressLine rewrites one stderr line per finished campaign run; the
// pool serializes the calls and done is strictly increasing.
func progressLine(done, total int) {
	fmt.Fprintf(os.Stderr, "\r%s", metrics.FormatProgress(done, total))
}

// endProgress terminates the progress line once a campaign finishes.
func endProgress() { fmt.Fprintln(os.Stderr) }

// fairFlags carries the -campaign fairshare knobs.
type fairFlags struct {
	users, queues, epochs, workers int
	histPath, histFmt              string
}

// runCampaign executes one of the named sweeps and exits.
func runCampaign(kind string, opts esp.GenOpts, copts campaign.Options, nSeeds int, scaleJobs bool, ff fairFlags) {
	switch kind {
	case "seeds":
		if nSeeds < 1 {
			nSeeds = 1
		}
		seeds := make([]int64, nSeeds)
		for i := range seeds {
			seeds[i] = opts.Seed + int64(i)
		}
		fmt.Fprintf(os.Stderr, "seed sweep: %d seeds x 4 configs...\n", nSeeds)
		groups := experiments.SeedSweep(opts, seeds, copts)
		endProgress()
		fmt.Println("=== Campaign: Table II per seed ===")
		fmt.Print(experiments.FormatSeedSweep(groups))
	case "fraction":
		fracs := experiments.DefaultFractions()
		fmt.Fprintf(os.Stderr, "evolving-fraction sweep: %d points (Dyn-HP)...\n", len(fracs))
		points := experiments.FractionSweep(opts, fracs, copts)
		endProgress()
		fmt.Println("=== Campaign: evolving-fraction sweep (Dyn-HP) ===")
		fmt.Print(experiments.FormatSweep(points))
	case "scale":
		nodes := experiments.DefaultScaleNodes()
		fmt.Fprintf(os.Stderr, "cluster-size sweep: %d points (Dyn-HP)...\n", len(nodes))
		points := experiments.ScaleSweep(opts, nodes, copts)
		endProgress()
		fmt.Println("=== Campaign: cluster-size sweep (Dyn-HP) ===")
		fmt.Print(experiments.FormatSweep(points))
		if scaleJobs {
			pts := experiments.DefaultScaleJobs()
			fmt.Fprintf(os.Stderr, "queue-depth sweep: %d points (Dyn-HP, replicated mix)...\n", len(pts))
			deep := experiments.ScaleJobsSweep(opts, pts, copts)
			endProgress()
			fmt.Println("=== Campaign: queue-depth sweep (Dyn-HP, 4096 nodes) ===")
			fmt.Print(experiments.FormatSweep(deep))
		}
	case "fairshare":
		fopts := experiments.DefaultFairshareOpts()
		fopts.Users = ff.users
		fopts.Queues = ff.queues
		fopts.Epochs = ff.epochs
		fopts.Workers = ff.workers
		if fopts.Workers <= 0 {
			fopts.Workers = runtime.GOMAXPROCS(0)
		}
		fopts.OnProgress = progressLine
		var histFile *os.File
		if ff.histPath != "" {
			format, err := fairtree.ParseHistoryFormat(ff.histFmt)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			f, err := os.Create(ff.histPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			histFile = f
			fopts.History = f
			fopts.HistoryFormat = format
			fopts.HistoryDepth = 1 // group nodes: 1M leaf rows per epoch would dwarf the signal
		}
		fmt.Fprintf(os.Stderr, "fairshare stress: %d users x %d queues, %d epochs, %d workers...\n",
			fopts.Users, fopts.Queues, fopts.Epochs, fopts.Workers)
		r, err := experiments.RunFairshare(fopts)
		endProgress()
		if histFile != nil {
			if cerr := histFile.Close(); err == nil && cerr != nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("=== Campaign: hierarchical fairshare at scale ===")
		fmt.Print(experiments.FormatFairshare(r))
	default:
		fmt.Fprintf(os.Stderr, "unknown campaign %q (want seeds, fraction, scale or fairshare)\n", kind)
		os.Exit(2)
	}
	os.Exit(0)
}
