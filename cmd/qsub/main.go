// Command qsub submits a job to a running pbs-server, mirroring the
// Torque client command. The script selects the application the mother
// superior launches: "sleep:<dur>", "go:<registered app>", or
// "exec:<command line>" (exec-mode applications reach the TM interface
// through the TM_JOB_ID / TM_MOM_ADDR environment).
//
//	qsub -server 127.0.0.1:15001 -user alice -cores 8 -walltime 3600 \
//	     -script "exec:/path/to/app" -evolving
package main

import (
	"flag"
	"fmt"
	"os"
	"os/user"

	"repro/internal/proto"
)

func main() {
	var (
		server   = flag.String("server", "127.0.0.1:15001", "pbs-server address")
		name     = flag.String("name", "job", "job name")
		userName = flag.String("user", "", "submitting user (default: current user)")
		group    = flag.String("group", "", "group")
		account  = flag.String("account", "", "account")
		cores    = flag.Int("cores", 0, "cores (core-granular request)")
		nodes    = flag.Int("nodes", 0, "nodes (node-granular request)")
		ppn      = flag.Int("ppn", 0, "processors per node")
		wall     = flag.Int64("walltime", 0, "walltime in seconds")
		script   = flag.String("script", "sleep:10s", "job script")
		evolving = flag.Bool("evolving", false, "mark the job as evolving")
		sysprio  = flag.Int64("sysprio", 0, "system priority (ESP Z jobs)")
	)
	flag.Parse()

	if *userName == "" {
		if u, err := user.Current(); err == nil {
			*userName = u.Username
		} else {
			*userName = "unknown"
		}
	}
	c, err := proto.Dial(*server)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsub: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()
	env, err := c.Request(proto.TQSub, proto.JobSpec{
		Name: *name, User: *userName, Group: *group, Account: *account,
		Cores: *cores, Nodes: *nodes, PPN: *ppn, WallSecs: *wall,
		Script: *script, Evolving: *evolving, SystemPriority: *sysprio,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsub: %v\n", err)
		os.Exit(1)
	}
	var resp proto.QSubResp
	if err := env.Decode(&resp); err != nil {
		fmt.Fprintf(os.Stderr, "qsub: bad reply: %v\n", err)
		os.Exit(1)
	}
	if resp.Error != "" {
		fmt.Fprintf(os.Stderr, "qsub: %s\n", resp.Error)
		os.Exit(1)
	}
	fmt.Printf("job.%d\n", resp.JobID)
}
