// Command pbs-mom runs a compute-node daemon (the pbs_mom analog): it
// registers its node with the server and executes the jobs dispatched
// to it, including the mother-superior role of the dynamic allocation
// workflow (Figs. 3 and 4 of the paper).
//
//	pbs-mom -name node0 -cores 8 -server 127.0.0.1:15001
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/mom"
	"repro/internal/proto"
)

func main() {
	var (
		name      = flag.String("name", "node0", "node name")
		cores     = flag.Int("cores", 8, "cores on this node")
		server    = flag.String("server", "127.0.0.1:15001", "pbs-server address")
		listen    = flag.String("listen", "127.0.0.1:0", "TM/join listen address")
		heartbeat = flag.Duration("heartbeat", 0, "liveness beacon interval on the server link (0 disables; pair with the server's -heartbeat)")
		reconnect = flag.Bool("reconnect", true, "re-dial and re-register with backoff when the server link drops")
		handshake = flag.Duration("handshake-timeout", 0, "deadline for an inbound connection's first message (0 disables)")
		protoFlag = flag.String("proto", "auto", "wire protocol: v1 (JSON), v2 (binary) or auto (negotiate v2, fall back to v1)")
		verbose   = flag.Bool("v", false, "verbose logging")
	)
	flag.Parse()

	mode, err := proto.ParseMode(*protoFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbs-mom: %v\n", err)
		os.Exit(1)
	}
	m := mom.New(*name, *cores)
	m.Verbose = *verbose
	m.HeartbeatInterval = *heartbeat
	m.AutoReconnect = *reconnect
	m.HandshakeTimeout = *handshake
	m.Proto = mode
	if err := m.Start(*listen, *server); err != nil {
		fmt.Fprintf(os.Stderr, "pbs-mom: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("pbs-mom %s (%d cores) registered with %s, TM at %s\n", *name, *cores, *server, m.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	m.Close()
}
