// Command qdel cancels a job on a running pbs-server, mirroring the
// Torque client command.
//
//	qdel -server 127.0.0.1:15001 17
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

import "repro/internal/proto"

func main() {
	server := flag.String("server", "127.0.0.1:15001", "pbs-server address")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qdel [-server addr] <jobid>")
		os.Exit(2)
	}
	arg := strings.TrimPrefix(flag.Arg(0), "job.")
	id, err := strconv.Atoi(arg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qdel: bad job id %q\n", flag.Arg(0))
		os.Exit(2)
	}
	c, err := proto.Dial(*server)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qdel: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()
	if _, err := c.Request(proto.TQDel, proto.QDelReq{JobID: id}); err != nil {
		fmt.Fprintf(os.Stderr, "qdel: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("job.%d deleted\n", id)
}
