// Command qstat shows the queue and node state of a running
// pbs-server, mirroring the Torque client command.
//
//	qstat -server 127.0.0.1:15001
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/proto"
)

func main() {
	server := flag.String("server", "127.0.0.1:15001", "pbs-server address")
	flag.Parse()

	c, err := proto.Dial(*server)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qstat: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()
	env, err := c.Request(proto.TQStat, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qstat: %v\n", err)
		os.Exit(1)
	}
	var resp proto.QStatResp
	if err := env.Decode(&resp); err != nil {
		fmt.Fprintf(os.Stderr, "qstat: bad reply: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-8s %-16s %-10s %-10s %6s %5s %10s\n",
		"Job", "Name", "User", "State", "Cores", "+Dyn", "Wait[s]")
	for _, j := range resp.Jobs {
		fmt.Printf("job.%-4d %-16s %-10s %-10s %6d %5d %10.1f\n",
			j.ID, j.Name, j.User, j.State, j.Cores, j.DynCores, j.WaitSecs)
	}
	fmt.Printf("\n%-10s %6s %6s %-8s\n", "Node", "Cores", "Used", "State")
	for _, n := range resp.Nodes {
		fmt.Printf("%-10s %6d %6d %-8s\n", n.Name, n.Cores, n.Used, n.State)
	}
}
